"""The asyncio serving loop: admission → tick batches → streaming.

:class:`AsyncRequestGateway` is the event-loop successor to the
threaded :class:`~repro.scale.gateway.RequestGateway`, keeping its
contracts while removing its blocking:

* **admission is non-blocking** — :meth:`submit_nowait` either enqueues
  and returns an :class:`asyncio.Future`, or raises a typed refusal:
  :class:`~repro.core.errors.Overloaded` (token bucket empty or a
  queue-depth watermark shed this priority tier; carries Retry-After)
  below the hard limit, :class:`~repro.core.errors.AdmissionRejected`
  at it.  Nothing ever waits for queue space;
* **authorization is batched per tick** — a dispatcher task wakes when
  work arrives, yields once so every submitter racing this tick lands
  in the same batch, dequeues fairly across tenants (deficit round
  robin), groups by shard and resolves each group through the engine's
  ``decide_batch`` — against compiled epoch snapshots when the engine
  is an :class:`~repro.gateway.engine.EpochalShardRouter`.  Groups are
  separated by ``await asyncio.sleep(0)`` so a large batch never
  monopolizes the loop;
* **dissemination streams** — :meth:`stream` pins the store epoch *at
  admission* and serves chunked canonical bytes from interned snapshot
  fragments; writers publish freely between chunks and the pinned
  snapshot stays alive until the stream finishes (released in a
  ``finally``, so cancelled consumers release too).

Fault semantics extend the threaded gateway's fail-closed contract:
the injector is stepped per shard-group at ``agateway:shard<i>`` and
per stream chunk at ``agateway:stream``; a fault turns the whole
group/stream into one typed :class:`~repro.core.errors.TransportError`
— never an altered decision, never corrupted bytes.  DELAY charges the
fault clock, DUPLICATE is harmless (decisions are read-only; a
duplicated chunk is deduplicated by any sane transport, so we send
once).

Determinism: construct with ``auto_dispatch=False`` and drive
:meth:`process_pending` yourself — the asyncio analog of the threaded
gateway's ``workers=0`` mode, and what the chaos battery runs.
"""

from __future__ import annotations

import asyncio
import time
from typing import AsyncIterator, Callable

from repro.core.errors import (
    AdmissionRejected,
    ConfigurationError,
    CorruptMessage,
    MessageDropped,
    Overloaded,
    ReplicaUnavailable,
    StaleRead,
)
from repro.core.evaluator import Decision
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.gateway.admission import (
    AdmissionController,
    Clock,
    DeficitRoundRobin,
    TenantConfig,
)
from repro.gateway.stats import GatewayStats
from repro.gateway.streaming import DEFAULT_CHUNK_SIZE, stream_element

#: FaultKind → the typed TransportError the shard-group or stream
#: fails with (same mapping as the threaded gateway).
_FAULT_ERRORS = {
    FaultKind.CRASH: lambda site: ReplicaUnavailable(
        f"shard behind {site} is down"),
    FaultKind.DROP: lambda site: MessageDropped(
        f"batch to {site} lost in transit"),
    FaultKind.REORDER: lambda site: MessageDropped(
        f"batch to {site} arrived out of order and was discarded"),
    FaultKind.CORRUPT: lambda site: CorruptMessage(
        f"batch to {site} failed its frame checksum"),
    FaultKind.STALE_READ: lambda site: StaleRead(
        f"shard behind {site} served a lagging snapshot"),
}

#: Precedence when one step yields several fault events.
_FAULT_ORDER = (FaultKind.CRASH, FaultKind.CORRUPT, FaultKind.STALE_READ,
                FaultKind.DROP, FaultKind.REORDER)


class AsyncRequestGateway:
    """Multi-tenant asyncio gateway over a batched decision engine.

    *engine* needs ``decide_batch(triples)`` and optionally
    ``shard_for_path(path)`` (absent → one shard-0 group); *store* is
    an optional snapshot store (``epochs`` + ``pool``, e.g.
    :class:`~repro.snap.xmlstore.SnapshotXmlDatabase`) that enables
    :meth:`stream` / :meth:`stream_document` and :meth:`write`.

    Requests are duck-typed: anything with ``triple()`` and ``path``
    (the threaded gateway's :class:`~repro.scale.gateway.Request`
    works unchanged).
    """

    def __init__(self, engine, store=None, *,
                 queue_limit: int = 4096,
                 high_watermark: int | None = None,
                 low_watermark: int | None = None,
                 batch_size: int = 64,
                 default_tenant: TenantConfig | None = TenantConfig(),
                 clock: Clock = time.perf_counter,
                 faults: FaultInjector | None = None,
                 fault_site: str = "agateway",
                 auto_dispatch: bool = True,
                 replicas=None,
                 durability: str | None = None) -> None:
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        # Durability wiring (repro.wal): same contract as the threaded
        # gateway — "fsync" makes write() block on the store's
        # wal_sync() barrier, "enqueue" acks at enqueue under the
        # store's bounded-lag backpressure.
        if durability is not None:
            if durability not in ("fsync", "enqueue"):
                raise ConfigurationError(
                    f"unknown durability mode {durability!r}; expected "
                    f"'fsync' or 'enqueue'")
            if not hasattr(store, "wal_sync"):
                raise ConfigurationError(
                    "durability= needs a durable store (one with "
                    "wal_sync()); wrap the store in repro.wal.durable")
        self.durability = durability
        self.engine = engine
        self.store = store
        self.batch_size = batch_size
        self.default_tenant = default_tenant
        self.clock = clock
        self.faults = faults
        self.fault_site = fault_site
        self.auto_dispatch = auto_dispatch
        self.admission = AdmissionController(
            clock, queue_limit=queue_limit,
            high_watermark=high_watermark, low_watermark=low_watermark)
        self._known_tenants: set[str] = set()
        self.stats = GatewayStats()
        self._drr = DeficitRoundRobin()
        self._wake = asyncio.Event()
        self._dispatcher: asyncio.Task | None = None
        self._closing = False
        self._started_at = clock()
        self._pool = getattr(store, "pool", None)
        self._stream_epochs = getattr(store, "epochs", None)
        # Replication wiring (repro.replica): a ReplicaRouter
        # (duck-typed ``get``/``put``/``session``) behind the
        # replica_read/replica_write key-value path.  The router's
        # calls are synchronous and bounded, so they run inline on the
        # loop like the snapshot read/write path does.
        self.replicas = replicas
        # Routers exposing per-shard engines (EpochalShardRouter) let
        # the already-grouped batch skip the router's own re-partition
        # — decide_batch goes straight to the shard's engine.
        self._shard_engine = (
            engine.engine
            if hasattr(engine, "shard_for_path")
            and callable(getattr(engine, "engine", None)) else None)

    # -- tenants -----------------------------------------------------------

    def register(self, tenant: str,
                 config: TenantConfig | None = None) -> TenantConfig:
        """Register *tenant* (or re-register with a new contract)."""
        config = config if config is not None else self.default_tenant
        if config is None:
            raise ConfigurationError(
                f"no config for tenant {tenant!r} and no default")
        self.admission.register(tenant, config)
        self._drr.register(tenant, config.quantum)
        self._known_tenants.add(tenant)
        return config

    def _ensure_tenant(self, tenant: str) -> None:
        if tenant not in self._known_tenants:
            self.register(tenant)

    # -- admission (never blocks) ------------------------------------------

    def submit_nowait(self, tenant: str, request) -> asyncio.Future:
        """Admit *request* for *tenant* or raise the typed refusal.

        Returns a future resolving to the :class:`Decision` (or the
        typed transport error a fault converted its batch into).
        """
        if self._closing:
            raise AdmissionRejected("gateway is shutting down")
        self._ensure_tenant(tenant)
        try:
            self.admission.admit(tenant, self._drr.pending(),
                                 self._drain_rate())
        except Overloaded:
            with self.stats._lock:
                self.stats.shed += 1
            raise
        except AdmissionRejected:
            with self.stats._lock:
                self.stats.rejected += 1
            raise
        future = asyncio.get_running_loop().create_future()
        self._drr.push(tenant, (request, future, self.clock()))
        with self.stats._lock:
            self.stats.admitted += 1
        self._wake.set()
        if self.auto_dispatch and self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="gateway-dispatcher")
        return future

    async def submit(self, tenant: str, request) -> Decision:
        """Admit and await the decision in one call."""
        return await self.submit_nowait(tenant, request)

    def pending(self) -> int:
        return self._drr.pending()

    def _drain_rate(self) -> float:
        """Requests/s served since construction — the denominator of
        the watermark Retry-After hint.  Cumulative on purpose: it is
        deterministic under a manual clock and smooth under a real one.
        """
        elapsed = max(self.clock() - self._started_at, 1e-3)
        return self.stats.completed / elapsed

    # -- the dispatcher ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            if self._drr.pending() == 0:
                if self._closing:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            # One yield per tick: every submitter already scheduled on
            # this loop iteration enqueues before we cut the batch.
            await asyncio.sleep(0)
            batch = self._drr.take(self.batch_size)
            if batch:
                await self._evaluate(batch)

    def _shard_of(self, request) -> int:
        shard_for_path = getattr(self.engine, "shard_for_path", None)
        if shard_for_path is None:
            return 0
        return shard_for_path(request.path)

    async def _evaluate(self, batch: list) -> None:
        """Group one dequeued batch by shard; decide each group."""
        dequeued_at = self.clock()
        with self.stats._lock:
            self.stats.batches += 1
            queue_wait = self.stats.stage("queue_wait")
            for _, _, submitted_at in batch:
                wait = dequeued_at - submitted_at
                self.stats.queue_wait_s += wait
                queue_wait.record(wait)

        groups: dict[int, list] = {}
        for request, future, submitted_at in batch:
            groups.setdefault(self._shard_of(request), []).append(
                (request, future, submitted_at))

        for shard in sorted(groups):
            group = groups[shard]
            error = self._fault_for(f"{self.fault_site}:shard{shard}")
            if error is None:
                started = self.clock()
                decide_batch = (
                    self._shard_engine(shard).decide_batch
                    if self._shard_engine is not None
                    else self.engine.decide_batch)
                try:
                    decisions = decide_batch(
                        [request.triple() for request, _, _ in group])
                except Exception as exc:
                    error = exc
                else:
                    finished = self.clock()
                    with self.stats._lock:
                        self.stats.evaluate_s += finished - started
                        self.stats.completed += len(group)
                        self.stats.stage("evaluate").record(
                            finished - started)
                        for _, _, submitted_at in group:
                            self.stats.latency.record(
                                finished - submitted_at)
                    for (_, future, _), decision in zip(group, decisions):
                        if not future.done():
                            future.set_result(decision)
            if error is not None:
                with self.stats._lock:
                    self.stats.failed += len(group)
                for _, future, _ in group:
                    if not future.done():
                        future.set_exception(error)
            # Hand the loop back between shard groups: submitters and
            # stream consumers interleave with a long batch.
            await asyncio.sleep(0)

    def _fault_for(self, site: str) -> Exception | None:
        """Step the injector at *site*; worst event wins.  DELAY has
        already charged the fault clock inside ``step``; DUPLICATE is
        harmless for read-only work."""
        if self.faults is None:
            return None
        events = self.faults.step(site)
        for kind in _FAULT_ORDER:
            if any(event.kind is kind for event in events):
                return _FAULT_ERRORS[kind](site)
        return None

    # -- deterministic mode ------------------------------------------------

    async def process_pending(self) -> int:
        """Drain and evaluate everything queued, in DRR order, on the
        caller's task — the deterministic path (``auto_dispatch=False``):
        same submissions + same fault plan ⇒ same responses."""
        processed = 0
        while self._drr.pending():
            batch = self._drr.take(self.batch_size)
            if not batch:
                break
            await self._evaluate(batch)
            processed += len(batch)
        return processed

    # -- streaming dissemination -------------------------------------------

    def stream(self, tenant: str, resolve: Callable,
               chunk_size: int = DEFAULT_CHUNK_SIZE) -> AsyncIterator[str]:
        """Open a chunked stream of ``resolve(snapshot)``'s bytes.

        Admission is charged and the store epoch pinned *here*, before
        the first chunk is awaited — a stream observes exactly the
        snapshot that was current when it was admitted, no matter how
        many epochs writers publish while it drains.  *resolve* maps
        the pinned snapshot to a frozen document or element.
        """
        if self._stream_epochs is None:
            raise ConfigurationError(
                "gateway has no snapshot store; pass store= to stream")
        if self._closing:
            raise AdmissionRejected("gateway is shutting down")
        self._ensure_tenant(tenant)
        try:
            self.admission.admit(tenant, self._drr.pending(),
                                 self._drain_rate())
        except Overloaded:
            with self.stats._lock:
                self.stats.shed += 1
            raise
        except AdmissionRejected:
            with self.stats._lock:
                self.stats.rejected += 1
            raise
        snapshot = self._stream_epochs.acquire()
        try:
            node = resolve(snapshot)
            root = getattr(node, "root", node)
        except BaseException:
            self._stream_epochs.release(snapshot)
            raise
        with self.stats._lock:
            self.stats.admitted += 1
            self.stats.streams += 1
            self.stats.snapshot_reads += 1
        return self._stream_chunks(snapshot, root, chunk_size,
                                   self.clock())

    def stream_document(self, tenant: str, collection: str, doc_id: str,
                        chunk_size: int = DEFAULT_CHUNK_SIZE
                        ) -> AsyncIterator[str]:
        """Stream one stored document's canonical serialization."""
        return self.stream(
            tenant, lambda snapshot: snapshot.document(collection, doc_id),
            chunk_size=chunk_size)

    async def _stream_chunks(self, snapshot, root, chunk_size: int,
                             admitted_at: float) -> AsyncIterator[str]:
        try:
            async for chunk in stream_element(root, self._pool,
                                              chunk_size=chunk_size):
                error = self._fault_for(f"{self.fault_site}:stream")
                if error is not None:
                    # Fail closed: a typed error, never garbled bytes.
                    raise error
                with self.stats._lock:
                    self.stats.stream_chunks += 1
                yield chunk
            with self.stats._lock:
                self.stats.completed += 1
                self.stats.stage("stream").record(
                    self.clock() - admitted_at)
        except BaseException:
            with self.stats._lock:
                self.stats.failed += 1
            raise
        finally:
            self._stream_epochs.release(snapshot)

    # -- snapshot read/write (store side) ----------------------------------

    def read(self, fn):
        """Run ``fn(snapshot)`` against the pinned current store epoch."""
        if self._stream_epochs is None:
            raise ConfigurationError(
                "gateway has no snapshot store; pass store=")
        with self._stream_epochs.reading() as snapshot:
            result = fn(snapshot)
        with self.stats._lock:
            self.stats.snapshot_reads += 1
        return result

    def write(self, fn):
        """Apply ``fn(store)`` as one write and publish a new epoch.

        Streams opened before this call keep their pinned snapshot;
        streams opened after it see the new epoch.
        """
        if self.store is None:
            raise ConfigurationError(
                "gateway has no snapshot store; pass store=")
        writer = getattr(self.store, "writer", None)
        if writer is not None:
            with writer():
                result = fn(self.store)
        else:
            result = fn(self.store)
            publish = getattr(self.store, "publish", None)
            if publish is not None:
                publish()
        if self.durability == "fsync":
            # Settle before acknowledging; a sealed pipeline's typed
            # WalError reaches the caller instead of a false ack.
            self.store.wal_sync()
        with self.stats._lock:
            self.stats.writes += 1
            self.stats.epochs_advanced += 1
        return result

    # -- the replicated key-value path (repro.replica) ---------------------

    def replica_session(self):
        """A read-your-writes session over the replica router."""
        if self.replicas is None:
            raise ConfigurationError(
                "gateway has no replica router; pass replicas=")
        return self.replicas.session()

    def replica_read(self, key: str, session=None):
        """Read *key* from any caught-up replica at or above the
        session's watermark floor (read-your-writes)."""
        if self.replicas is None:
            raise ConfigurationError(
                "gateway has no replica router; pass replicas=")
        value = self.replicas.get(key, session=session)
        with self.stats._lock:
            self.stats.replica_reads += 1
        return value

    def replica_write(self, key: str, value: str, session=None) -> int:
        """Write through the shard primary (acknowledged at ≥1 read
        replica); returns the version and raises the session floor."""
        if self.replicas is None:
            raise ConfigurationError(
                "gateway has no replica router; pass replicas=")
        version = self.replicas.put(key, value, session=session)
        with self.stats._lock:
            self.stats.replica_writes += 1
        return version

    # -- lifecycle ---------------------------------------------------------

    async def close(self, drain: bool = True) -> None:
        """Stop admitting; by default finish what was admitted."""
        self._closing = True
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if drain:
            await self.process_pending()
        else:
            for request, future, _ in self._drr.drain_all():
                if not future.done():
                    future.set_exception(AdmissionRejected(
                        "gateway closed before evaluation"))

    async def __aenter__(self) -> "AsyncRequestGateway":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
