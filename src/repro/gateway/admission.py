"""Multi-tenant admission: token buckets, DRR fairness, watermarks.

The serving layer's security posture starts *before* authorization:
"Trust Brokerage Systems for the Internet" motivates per-principal
admission as a first-class primitive — a tenant's right to submit load
is itself a brokered, rate-limited grant.  Three mechanisms compose:

* :class:`TokenBucket` — per-tenant rate limiting.  A tenant over its
  sustained rate (plus burst) is shed with a typed
  :class:`~repro.core.errors.Overloaded` carrying a ``retry_after``
  hint derived from the bucket's refill rate — the earliest instant a
  token will exist;
* :class:`DeficitRoundRobin` — fair dequeueing across tenant backlogs.
  Each round a tenant's deficit grows by its quantum and it drains that
  many requests; a noisy tenant's long backlog cannot starve a
  well-behaved one because the scheduler moves on when the deficit is
  spent, not when the queue is empty;
* :class:`AdmissionController` — queue-depth watermarks.  Above the
  high watermark the controller sheds by *priority tier*: the required
  priority climbs linearly with depth, so low-priority tenants are
  refused (gracefully, with Retry-After) first, higher tiers only as
  depth approaches the hard queue limit — where
  :class:`~repro.core.errors.AdmissionRejected` is raised exactly like
  the threaded gateway's bounded queue.  Shedding starts at the high
  watermark and stops only once depth falls back under the low
  watermark (hysteresis), so the loop drains instead of oscillating.

Time is injected (``clock`` returns seconds as float) so tests and the
chaos battery drive admission on a manual clock with zero flakiness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.errors import (
    AdmissionRejected,
    ConfigurationError,
    Overloaded,
)

Clock = Callable[[], float]


class ManualClock:
    """Deterministic test clock: ``advance()`` is the only way time moves."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ConfigurationError("clock cannot run backwards")
        self._now += seconds
        return self._now


@dataclass(frozen=True)
class TenantConfig:
    """Admission contract for one tenant.

    ``rate``/``burst`` parameterize the token bucket (requests per
    second, bucket capacity); ``priority`` orders watermark shedding —
    larger survives deeper overload; ``quantum`` weights the DRR
    scheduler (requests drained per round).
    """

    rate: float = 1000.0
    burst: float = 100.0
    priority: int = 0
    quantum: int = 32

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("tenant rate must be > 0")
        if self.burst < 1:
            raise ConfigurationError("tenant burst must be >= 1")
        if self.priority < 0:
            raise ConfigurationError("tenant priority must be >= 0")
        if self.quantum < 1:
            raise ConfigurationError("tenant quantum must be >= 1")


class TokenBucket:
    """Classic token bucket on an injected clock.

    ``try_take`` is non-blocking: it either consumes a token or reports
    how long until one exists — the Retry-After hint the gateway puts
    on the :class:`~repro.core.errors.Overloaded` response.
    """

    def __init__(self, rate: float, burst: float, clock: Clock) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst,
                               self._tokens + elapsed * self.rate)
            self._refilled_at = now

    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, amount: float = 1.0) -> float | None:
        """Consume *amount* tokens; return ``None`` on success or the
        seconds until the bucket could satisfy the request."""
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return None
        return (amount - self._tokens) / self.rate


class DeficitRoundRobin:
    """Deficit-round-robin over named queues.

    ``take(budget)`` drains up to *budget* items: the active-tenant
    ring is visited in registration order; each visit tops the
    tenant's deficit up by its quantum and dequeues while deficit and
    backlog last.  Deficits reset when a queue empties, so a tenant
    cannot bank credit while idle — the standard DRR no-starvation
    argument applies per round.
    """

    def __init__(self) -> None:
        self._queues: dict[str, list] = {}
        self._quanta: dict[str, int] = {}
        self._deficits: dict[str, int] = {}
        self._ring: list[str] = []
        self._cursor = 0
        self._pending = 0

    def register(self, tenant: str, quantum: int) -> None:
        if tenant not in self._queues:
            self._queues[tenant] = []
            self._ring.append(tenant)
        self._quanta[tenant] = quantum
        self._deficits.setdefault(tenant, 0)

    def push(self, tenant: str, item: object) -> int:
        """Enqueue for *tenant* (must be registered); returns depth."""
        self._queues[tenant].append(item)
        self._pending += 1
        return self._pending

    def pending(self) -> int:
        return self._pending

    def backlog(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def take(self, budget: int) -> list:
        """Dequeue up to *budget* items fairly across tenants."""
        taken: list = []
        if self._pending == 0 or budget <= 0 or not self._ring:
            return taken
        ring = self._ring
        # One full lap with no progress means every backlog is empty.
        idle_visits = 0
        while len(taken) < budget and idle_visits < len(ring):
            tenant = ring[self._cursor % len(ring)]
            self._cursor = (self._cursor + 1) % len(ring)
            queue = self._queues[tenant]
            if not queue:
                self._deficits[tenant] = 0
                idle_visits += 1
                continue
            idle_visits = 0
            self._deficits[tenant] += self._quanta[tenant]
            while (queue and self._deficits[tenant] > 0
                    and len(taken) < budget):
                taken.append(queue.pop(0))
                self._deficits[tenant] -= 1
            if not queue:
                self._deficits[tenant] = 0
        self._pending -= len(taken)
        return taken

    def drain_all(self) -> list:
        """Everything still queued, fair order (shutdown path)."""
        return self.take(self._pending)


class AdmissionController:
    """Token buckets + watermark shedding in front of the DRR queues."""

    def __init__(self, clock: Clock, queue_limit: int = 4096,
                 high_watermark: int | None = None,
                 low_watermark: int | None = None) -> None:
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        self.clock = clock
        self.queue_limit = queue_limit
        self.high_watermark = (high_watermark if high_watermark is not None
                               else (queue_limit * 3) // 4)
        self.low_watermark = (low_watermark if low_watermark is not None
                              else queue_limit // 2)
        if not 0 <= self.low_watermark <= self.high_watermark \
                <= queue_limit:
            raise ConfigurationError(
                f"watermarks must satisfy 0 <= low <= high <= limit, "
                f"got low={self.low_watermark} high={self.high_watermark} "
                f"limit={queue_limit}")
        self._configs: dict[str, TenantConfig] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._max_priority = 0
        self._shedding = False

    # -- tenant registry --------------------------------------------------

    def register(self, tenant: str, config: TenantConfig) -> None:
        self._configs[tenant] = config
        self._buckets[tenant] = TokenBucket(config.rate, config.burst,
                                            self.clock)
        self._max_priority = max(
            (c.priority for c in self._configs.values()), default=0)

    def config(self, tenant: str) -> TenantConfig:
        try:
            return self._configs[tenant]
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {tenant!r}; register it first") from None

    def tenants(self) -> Iterable[str]:
        return self._configs.keys()

    # -- the admission decision -------------------------------------------

    def required_priority(self, depth: int) -> float:
        """Priority a tenant needs to be admitted at *depth* pending.

        0 below the shed threshold; climbs linearly to ``max_priority
        + 1`` at the hard limit.  Lower tiers are refused first and
        even the top tier is shed (gracefully, with Retry-After) in
        the last slice before the hard :class:`AdmissionRejected`
        bound — and when every tenant shares one priority, all of them
        degrade gracefully between the watermarks instead of slamming
        into the hard limit.  While shedding, the threshold is
        measured from the *low* watermark — the hysteresis that lets
        the queue actually drain.
        """
        floor = self.low_watermark if self._shedding \
            else self.high_watermark
        if depth <= floor:
            return 0.0
        span = max(self.queue_limit - floor, 1)
        return (self._max_priority + 1) * (depth - floor) / span

    def admit(self, tenant: str, depth: int,
              drain_rate: float = 0.0, amount: float = 1.0) -> None:
        """Admit one request for *tenant* given *depth* pending, or
        raise the typed refusal.  ``drain_rate`` (requests/s served
        recently) scales the watermark Retry-After hint; ``amount``
        charges several bucket tokens in one decision (batch
        admission — the multicore dispatcher admits a closed-loop
        batch as a unit instead of paying the bucket per request)."""
        config = self.config(tenant)
        if depth >= self.queue_limit:
            raise AdmissionRejected(
                f"admission queue full ({self.queue_limit} pending)")
        if self._shedding and depth <= self.low_watermark:
            self._shedding = False
        elif not self._shedding and depth >= self.high_watermark:
            self._shedding = True
        required = self.required_priority(depth)
        if config.priority < required:
            excess = depth - self.low_watermark
            retry_after = (excess / drain_rate if drain_rate > 0
                           else 0.05)
            raise Overloaded(
                f"queue depth {depth} sheds priority "
                f"{config.priority} (< {required:.2f}) for tenant "
                f"{tenant!r}", retry_after=min(retry_after, 5.0),
                reason="watermark")
        wait = self._buckets[tenant].try_take(amount)
        if wait is not None:
            raise Overloaded(
                f"tenant {tenant!r} exceeded its admission rate "
                f"({config.rate:g}/s, burst {config.burst:g})",
                retry_after=wait, reason="bucket")

    @property
    def shedding(self) -> bool:
        return self._shedding

    def bucket(self, tenant: str) -> TokenBucket:
        return self._buckets[tenant]
