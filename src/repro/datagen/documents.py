"""Synthetic XML corpora (the proprietary-data substitution of DESIGN.md).

Seeded generators for the two document families the paper's scenarios
need: hospital patient records (the privacy-sensitive workload of §3.3)
and product catalogs (the commercial workload of §2.1).  Shapes —
element fan-out, text sizes, value skew — are fixed by the seed so every
benchmark run regenerates identical corpora.
"""

from __future__ import annotations

import random

from repro.xmldb.dtd import Schema
from repro.xmldb.model import Document, Element, element

FIRST_NAMES = ["Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace",
               "Heidi", "Ivan", "Judy", "Mallory", "Niaj", "Olivia",
               "Peggy", "Rupert", "Sybil", "Trent", "Victor", "Wendy"]
SURNAMES = ["Rossi", "Smith", "Garcia", "Chen", "Kumar", "Okafor",
            "Novak", "Silva", "Dubois", "Yamada", "Larsen", "Kowalski"]
DIAGNOSES = ["influenza", "hypertension", "diabetes", "asthma",
             "migraine", "fracture", "anemia", "bronchitis",
             "dermatitis", "arrhythmia"]
DEPARTMENTS = ["oncology", "cardiology", "pediatrics", "neurology",
               "radiology", "emergency"]
TREATMENTS = ["rest", "antibiotics", "physiotherapy", "surgery",
              "monitoring", "medication"]
PRODUCT_WORDS = ["widget", "gadget", "sprocket", "flange", "gear",
                 "valve", "sensor", "actuator", "bracket", "coupling"]


def hospital_record(rng: random.Random, record_id: str) -> Element:
    """One patient record with identifying, medical and billing parts."""
    name = f"{rng.choice(FIRST_NAMES)} {rng.choice(SURNAMES)}"
    ssn = f"{rng.randrange(100, 999)}-{rng.randrange(10, 99)}-{rng.randrange(1000, 9999)}"
    record = element(
        "record", None, {"id": record_id},
        element("name", name),
        element("ssn", ssn),
        element("department", rng.choice(DEPARTMENTS)),
        element("diagnosis", rng.choice(DIAGNOSES)),
        element("treatment", rng.choice(TREATMENTS)),
        element("billing", None, None,
                element("amount", str(rng.randrange(100, 5000))),
                element("insurer", f"insurer-{rng.randrange(1, 6)}")),
    )
    for visit_number in range(rng.randrange(0, 4)):
        record.append(element(
            "visit", None, {"n": str(visit_number + 1)},
            element("date", f"2003-{rng.randrange(1, 13):02d}-"
                            f"{rng.randrange(1, 29):02d}"),
            element("notes", f"visit note {visit_number + 1}")))
    return record


def hospital_corpus(record_count: int, seed: int = 0,
                    name: str = "hospital") -> Document:
    """A hospital document with *record_count* patient records."""
    rng = random.Random(seed)
    root = Element("hospital", {"name": name})
    for index in range(record_count):
        root.append(hospital_record(rng, f"r{index + 1}"))
    return Document(root, name=name)


def hospital_documents(document_count: int, records_each: int,
                       seed: int = 0) -> dict[str, Document]:
    """Several hospital documents keyed by document id."""
    return {
        f"hospital-{index + 1}": hospital_corpus(
            records_each, seed=seed + index, name=f"hospital-{index + 1}")
        for index in range(document_count)}


def hospital_schema() -> Schema:
    """The DTD the hospital corpus conforms to.

    The static analyzer (:mod:`repro.analysis`) evaluates policy targets
    against this element graph instead of materialized documents.
    """
    schema = Schema("hospital")
    schema.declare("hospital", children=["record*"],
                   optional_attributes=["name"])
    schema.declare("record",
                   children=["name", "ssn", "department", "diagnosis",
                             "treatment", "billing", "visit*"],
                   required_attributes=["id"])
    schema.declare("name", allow_text=True)
    schema.declare("ssn", allow_text=True)
    schema.declare("department", allow_text=True)
    schema.declare("diagnosis", allow_text=True)
    schema.declare("treatment", allow_text=True)
    schema.declare("billing", children=["amount", "insurer"])
    schema.declare("amount", allow_text=True)
    schema.declare("insurer", allow_text=True)
    schema.declare("visit", children=["date", "notes"],
                   required_attributes=["n"])
    schema.declare("date", allow_text=True)
    schema.declare("notes", allow_text=True)
    return schema


def catalog_document(product_count: int, seed: int = 0,
                     name: str = "catalog") -> Document:
    """A product catalog with public and wholesale (sensitive) prices."""
    rng = random.Random(seed)
    root = Element("catalog", {"vendor": name})
    for index in range(product_count):
        word = rng.choice(PRODUCT_WORDS)
        list_price = rng.randrange(10, 500)
        root.append(element(
            "product", None, {"sku": f"sku-{index + 1:05d}"},
            element("title", f"{word} model {index + 1}"),
            element("category", word),
            element("listPrice", str(list_price)),
            element("wholesalePrice",
                    str(round(list_price * rng.uniform(0.4, 0.7)))),
            element("stock", str(rng.randrange(0, 1000)))))
    return Document(root, name=name)
