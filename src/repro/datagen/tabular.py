"""Synthetic tabular datasets for the privacy experiments (E7, E8, E12).

The medical dataset mirrors the paper's running example ("names and
healthcare records are private"): correlated age/salary/diagnosis columns
with realistic skew, loadable straight into a
:class:`repro.relational.database.Database`, plus market-basket
transaction generators for the association-mining benchmarks.
"""

from __future__ import annotations

import random

import numpy as np

from repro.relational.database import Database
from repro.relational.table import TableSchema, schema

DIAGNOSES = ["influenza", "hypertension", "diabetes", "asthma",
             "migraine", "fracture", "anemia", "bronchitis"]
FIRST_NAMES = ["Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace",
               "Heidi", "Ivan", "Judy"]
SURNAMES = ["Rossi", "Smith", "Garcia", "Chen", "Kumar", "Okafor"]
ZIP_CODES = [f"2{n:04d}" for n in range(10, 60)]


def patients_schema() -> TableSchema:
    return schema("patients", primary_key="id",
                  id="int", name="text", zip="text", age="int",
                  salary="float", diagnosis="text", insurer="text")


def load_patients(database: Database, row_count: int, seed: int = 0,
                  owner: str = "dba") -> None:
    """Create and fill the patients table.

    Age is bimodal (young outpatients + elderly chronic patients);
    salary correlates with age; diagnosis correlates with age band —
    the correlations give the mining benchmarks something to find.
    """
    rng = random.Random(seed)
    database.create_table(patients_schema(), owner=owner)
    for index in range(row_count):
        if rng.random() < 0.6:
            age = int(max(18, rng.gauss(32, 6)))
        else:
            age = int(min(95, rng.gauss(68, 9)))
        salary = max(8_000.0, rng.gauss(18_000 + 600 * age, 8_000))
        if age >= 55:
            diagnosis = rng.choice(
                ["hypertension", "diabetes", "arrhythmia", "fracture"]
                if rng.random() < 0.8 else DIAGNOSES)
        else:
            diagnosis = rng.choice(
                ["influenza", "asthma", "migraine", "bronchitis"]
                if rng.random() < 0.8 else DIAGNOSES)
        database.insert(
            owner, "patients",
            id=index + 1,
            name=f"{rng.choice(FIRST_NAMES)} {rng.choice(SURNAMES)}",
            zip=rng.choice(ZIP_CODES),
            age=age,
            salary=round(salary, 2),
            diagnosis=diagnosis,
            insurer=f"insurer-{rng.randrange(1, 6)}")


def numeric_column(row_count: int, seed: int = 0) -> np.ndarray:
    """The bimodal age column alone, as a numpy array (for E7)."""
    rng = np.random.default_rng(seed)
    young = rng.normal(32, 6, int(row_count * 0.6))
    old = rng.normal(68, 9, row_count - len(young))
    values = np.clip(np.concatenate([young, old]), 18, 95)
    rng.shuffle(values)
    return values


BASKET_ITEMS = ["bread", "milk", "butter", "cheese", "apples", "coffee",
                "tea", "sugar", "pasta", "rice", "beans", "salt"]

#: Planted co-occurrence patterns the miners should find.
PLANTED_PATTERNS = [
    (frozenset({"bread", "milk"}), 0.35),
    (frozenset({"coffee", "sugar"}), 0.25),
    (frozenset({"pasta", "cheese"}), 0.20),
]


def market_baskets(basket_count: int, seed: int = 0
                   ) -> list[frozenset[str]]:
    """Transactions with planted frequent pairs plus background noise."""
    rng = random.Random(seed)
    baskets: list[frozenset[str]] = []
    for _ in range(basket_count):
        basket: set[str] = set()
        for pattern, probability in PLANTED_PATTERNS:
            if rng.random() < probability:
                basket |= pattern
        for item in BASKET_ITEMS:
            if rng.random() < 0.08:
                basket.add(item)
        if not basket:
            basket.add(rng.choice(BASKET_ITEMS))
        baskets.append(frozenset(basket))
    return baskets
