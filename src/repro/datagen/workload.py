"""Query workload generators: seeded XPath and policy workloads."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.credentials import (
    CredentialExpression,
    attribute_equals,
    has_credential,
    has_role,
    is_identity,
)
from repro.core.policy import Action, Policy, PolicyBase, deny, grant
from repro.datagen.documents import DEPARTMENTS, DIAGNOSES
from repro.datagen.population import ROLE_NAMES


@dataclass(frozen=True)
class XPathWorkload:
    """A named mix of XPath-lite queries over the hospital corpus."""

    name: str
    queries: tuple[str, ...]


def hospital_xpath_workload(seed: int = 0,
                            query_count: int = 20) -> XPathWorkload:
    rng = random.Random(seed)
    templates = [
        lambda: "/hospital/record",
        lambda: "//record/name",
        lambda: f"//record[diagnosis='{rng.choice(DIAGNOSES)}']/name",
        lambda: f"//record[department='{rng.choice(DEPARTMENTS)}']",
        lambda: f"//record[{rng.randrange(1, 10)}]",
        lambda: "//billing/amount",
        lambda: "//record/@id",
        lambda: "//visit/date",
    ]
    queries = tuple(rng.choice(templates)() for _ in range(query_count))
    return XPathWorkload(f"hospital-{seed}", queries)


def subject_qualification_policies(policy_count: int, basis: str,
                                   user_count: int,
                                   seed: int = 0) -> PolicyBase:
    """Policy bases for benchmark E1.

    ``basis`` selects how subjects are qualified:

    * ``identity`` — each policy names individual users; covering a
      population takes O(users) policies;
    * ``role`` — policies name roles; a handful covers everyone;
    * ``credential`` — policies select on credential attributes.
    """
    rng = random.Random(seed)
    base = PolicyBase()
    for index in range(policy_count):
        resource = f"hospital/records/r{rng.randrange(1, 500)}/**"
        expression: CredentialExpression
        if basis == "identity":
            expression = is_identity(
                f"user{rng.randrange(user_count):05d}")
        elif basis == "role":
            expression = has_role(rng.choice(ROLE_NAMES))
        elif basis == "credential":
            if rng.random() < 0.5:
                expression = attribute_equals(
                    "physician", "department", rng.choice(DEPARTMENTS))
            else:
                expression = has_credential(
                    rng.choice(["physician", "researcher", "insurer"]))
        else:
            raise ValueError(f"unknown basis {basis!r}")
        if rng.random() < 0.15:
            base.add(deny(expression, Action.READ, resource))
        else:
            base.add(grant(expression, Action.READ, resource))
    return base
