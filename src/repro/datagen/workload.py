"""Query workload generators: seeded XPath and policy workloads."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.credentials import (
    CredentialExpression,
    attribute_equals,
    has_credential,
    has_role,
    is_identity,
)
from repro.core.policy import Action, Policy, PolicyBase, deny, grant
from repro.datagen.documents import DEPARTMENTS, DIAGNOSES
from repro.datagen.population import ROLE_NAMES
from repro.xmlsec.authorx import (
    Privilege,
    XmlPolicyBase,
    XmlPropagation,
    xml_deny,
    xml_grant,
)


@dataclass(frozen=True)
class XPathWorkload:
    """A named mix of XPath-lite queries over the hospital corpus."""

    name: str
    queries: tuple[str, ...]


def hospital_xpath_workload(seed: int = 0,
                            query_count: int = 20) -> XPathWorkload:
    rng = random.Random(seed)
    templates = [
        lambda: "/hospital/record",
        lambda: "//record/name",
        lambda: f"//record[diagnosis='{rng.choice(DIAGNOSES)}']/name",
        lambda: f"//record[department='{rng.choice(DEPARTMENTS)}']",
        lambda: f"//record[{rng.randrange(1, 10)}]",
        lambda: "//billing/amount",
        lambda: "//record/@id",
        lambda: "//visit/date",
    ]
    queries = tuple(rng.choice(templates)() for _ in range(query_count))
    return XPathWorkload(f"hospital-{seed}", queries)


def subject_qualification_policies(policy_count: int, basis: str,
                                   user_count: int,
                                   seed: int = 0) -> PolicyBase:
    """Policy bases for benchmark E1.

    ``basis`` selects how subjects are qualified:

    * ``identity`` — each policy names individual users; covering a
      population takes O(users) policies;
    * ``role`` — policies name roles; a handful covers everyone;
    * ``credential`` — policies select on credential attributes.
    """
    rng = random.Random(seed)
    base = PolicyBase()
    for index in range(policy_count):
        resource = f"hospital/records/r{rng.randrange(1, 500)}/**"
        expression: CredentialExpression
        if basis == "identity":
            expression = is_identity(
                f"user{rng.randrange(user_count):05d}")
        elif basis == "role":
            expression = has_role(rng.choice(ROLE_NAMES))
        elif basis == "credential":
            if rng.random() < 0.5:
                expression = attribute_equals(
                    "physician", "department", rng.choice(DEPARTMENTS))
            else:
                expression = has_credential(
                    rng.choice(["physician", "researcher", "insurer"]))
        else:
            raise ValueError(f"unknown basis {basis!r}")
        if rng.random() < 0.15:
            base.add(deny(expression, Action.READ, resource))
        else:
            base.add(grant(expression, Action.READ, resource))
    return base


#: XPath targets over the hospital DTD; the final two are deliberately
#: unsatisfiable so large generated bases contain a realistic fraction
#: of dead policies for the analyzer to find.
XML_POLICY_TARGETS = (
    "/hospital/record",
    "//record/name",
    "//record/ssn",
    "//record/diagnosis",
    "//billing",
    "//billing/amount",
    "//visit",
    "//visit/date",
    "//record",
    "/hospital",
)
_DEAD_TARGETS = ("//prescription", "//record/audit-trail")


def xml_policy_workload(policy_count: int, seed: int = 0,
                        deny_fraction: float = 0.15,
                        dead_fraction: float = 0.02) -> XmlPolicyBase:
    """A seeded Author-X policy base over the hospital DTD.

    Subject specifications mix roles, credential attributes and
    identities (the E1 qualification bases); signs, privileges and
    propagation modes are drawn with realistic skew.  Benchmark A4 feeds
    these bases to :func:`repro.analysis.analyze_xml_policies`.
    """
    rng = random.Random(seed)
    base = XmlPolicyBase()
    propagations = (XmlPropagation.CASCADE, XmlPropagation.CASCADE,
                    XmlPropagation.LOCAL, XmlPropagation.ONE_LEVEL)
    # Guarantee the dead-target quota even for small bases so analyzer
    # benchmarks see every defect class at every size.
    dead_quota = (max(1, round(policy_count * dead_fraction))
                  if dead_fraction > 0 and policy_count else 0)
    dead_indices = set(rng.sample(range(policy_count), dead_quota))
    for index in range(policy_count):
        roll = rng.random()
        if roll < 0.5:
            expression = has_role(rng.choice(ROLE_NAMES))
        elif roll < 0.8:
            expression = attribute_equals(
                "physician", "department", rng.choice(DEPARTMENTS))
        elif roll < 0.9:
            expression = has_credential(
                rng.choice(["physician", "researcher", "insurer"]))
        else:
            expression = is_identity(f"user{rng.randrange(200):05d}")
        if index in dead_indices:
            target = rng.choice(_DEAD_TARGETS)
        else:
            target = rng.choice(XML_POLICY_TARGETS)
        privilege = (Privilege.NAVIGATE if rng.random() < 0.2
                     else Privilege.READ)
        factory = xml_deny if rng.random() < deny_fraction else xml_grant
        base.add(factory(expression, target,
                         privilege=privilege,
                         propagation=rng.choice(propagations)))
    return base
