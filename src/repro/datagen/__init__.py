"""Seeded synthetic workloads: documents, populations, registries,
tabular data and query mixes (the data-substitution layer of DESIGN.md).
"""

from repro.datagen.documents import (
    catalog_document,
    hospital_corpus,
    hospital_documents,
    hospital_record,
    hospital_schema,
)
from repro.datagen.population import (
    CREDENTIAL_TYPES,
    INSURANCE_TYPE,
    PHYSICIAN_TYPE,
    RESEARCHER_TYPE,
    ROLE_NAMES,
    NamedSubjects,
    generate_population,
    hospital_role_hierarchy,
    named_cast,
    random_credential,
)
from repro.datagen.registry_gen import (
    generate_businesses,
    random_business,
    random_service,
    standard_tmodels,
)
from repro.datagen.tabular import (
    BASKET_ITEMS,
    PLANTED_PATTERNS,
    load_patients,
    market_baskets,
    numeric_column,
    patients_schema,
)
from repro.datagen.workload import (
    XPathWorkload,
    hospital_xpath_workload,
    subject_qualification_policies,
    xml_policy_workload,
)

__all__ = [
    "BASKET_ITEMS", "CREDENTIAL_TYPES", "INSURANCE_TYPE",
    "NamedSubjects", "PHYSICIAN_TYPE", "PLANTED_PATTERNS",
    "RESEARCHER_TYPE", "ROLE_NAMES", "XPathWorkload", "catalog_document",
    "generate_businesses", "generate_population", "hospital_corpus",
    "hospital_documents", "hospital_record", "hospital_role_hierarchy",
    "hospital_schema", "hospital_xpath_workload", "load_patients",
    "market_baskets", "named_cast", "numeric_column", "patients_schema",
    "random_business", "random_credential", "random_service",
    "standard_tmodels", "subject_qualification_policies",
    "xml_policy_workload",
]
