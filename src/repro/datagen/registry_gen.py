"""Synthetic UDDI registry populations for benchmarks E5/E6."""

from __future__ import annotations

import random

from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    TModel,
    fresh_key,
)

SECTORS = ["logistics", "payments", "catalog", "weather", "translation",
           "booking", "analytics", "identity"]
COMPANY_WORDS = ["Acme", "Globex", "Initech", "Umbrella", "Hooli",
                 "Stark", "Wayne", "Tyrell", "Cyberdyne", "Wonka"]


def random_service(rng: random.Random, sector: str,
                   company: str) -> BusinessService:
    operation = rng.choice(["lookup", "submit", "query", "stream"])
    bindings = tuple(
        BindingTemplate(
            fresh_key("bind"),
            f"http://{company.lower()}.example/{sector}/{operation}/{n}",
            description=f"{operation} endpoint {n}")
        for n in range(rng.randrange(1, 3)))
    return BusinessService(
        fresh_key("svc"), f"{company} {sector} {operation}",
        description=f"{sector} service by {company}",
        category=sector, bindings=bindings)


def random_business(rng: random.Random,
                    services_range: tuple[int, int] = (1, 5)
                    ) -> BusinessEntity:
    company = (f"{rng.choice(COMPANY_WORDS)}"
               f"-{rng.randrange(100, 999)}")
    service_count = rng.randrange(*services_range)
    services = tuple(
        random_service(rng, rng.choice(SECTORS), company)
        for _ in range(max(service_count, 1)))
    return BusinessEntity(
        fresh_key("biz"), company,
        description=f"{company} provides {len(services)} services",
        contact=f"ops@{company.lower()}.example",
        services=services)


def generate_businesses(count: int, seed: int = 0,
                        services_range: tuple[int, int] = (1, 5)
                        ) -> list[BusinessEntity]:
    rng = random.Random(seed)
    return [random_business(rng, services_range) for _ in range(count)]


def standard_tmodels() -> list[TModel]:
    return [
        TModel("uddi:tmodel:soap", "SOAP 1.1 binding",
               "standard SOAP over HTTP"),
        TModel("uddi:tmodel:wsdl", "WSDL 1.1 description",
               "interface described in WSDL"),
        TModel("uddi:tmodel:p3p", "P3P policy attached",
               "service advertises a P3P privacy policy"),
    ]
