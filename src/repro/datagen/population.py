"""Synthetic user populations: subjects with roles and credentials.

§3.1's point is that web populations are large and dynamic — these
generators produce them.  Role assignment is Zipf-skewed (a few roles are
common, many are rare) and credential attributes are drawn from seeded
distributions so benchmark E1's populations are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.credentials import Credential, CredentialType
from repro.core.subjects import Role, RoleHierarchy, Subject, SubjectDirectory

ROLE_NAMES = ["patient", "nurse", "doctor", "chief-physician",
              "researcher", "administrator", "auditor", "pharmacist"]

PHYSICIAN_TYPE = CredentialType(
    "physician",
    frozenset({"department", "years_experience", "board_certified"}),
    frozenset({"department"}))
RESEARCHER_TYPE = CredentialType(
    "researcher",
    frozenset({"institution", "irb_approved"}),
    frozenset({"institution"}))
INSURANCE_TYPE = CredentialType(
    "insurer",
    frozenset({"company", "contract_tier"}),
    frozenset({"company"}))

CREDENTIAL_TYPES = (PHYSICIAN_TYPE, RESEARCHER_TYPE, INSURANCE_TYPE)

DEPARTMENTS = ["oncology", "cardiology", "pediatrics", "neurology",
               "radiology", "emergency"]


def hospital_role_hierarchy() -> RoleHierarchy:
    """chief-physician > doctor > nurse; administrator > auditor."""
    hierarchy = RoleHierarchy()
    for name in ROLE_NAMES:
        hierarchy.add_role(Role(name))
    hierarchy.add_seniority(Role("doctor"), Role("nurse"))
    hierarchy.add_seniority(Role("chief-physician"), Role("doctor"))
    hierarchy.add_seniority(Role("administrator"), Role("auditor"))
    return hierarchy


def _zipf_choice(rng: random.Random, options: list[str]) -> str:
    """Zipf-ish pick: option i with weight 1/(i+1)."""
    weights = [1.0 / (index + 1) for index in range(len(options))]
    total = sum(weights)
    point = rng.random() * total
    cumulative = 0.0
    for option, weight in zip(options, weights):
        cumulative += weight
        if point <= cumulative:
            return option
    return options[-1]


def random_credential(rng: random.Random) -> Credential:
    credential_type = rng.choice(CREDENTIAL_TYPES)
    if credential_type is PHYSICIAN_TYPE:
        return credential_type.issue(
            issuer="medical-board",
            department=rng.choice(DEPARTMENTS),
            years_experience=rng.randrange(1, 35),
            board_certified=rng.random() < 0.7)
    if credential_type is RESEARCHER_TYPE:
        return credential_type.issue(
            issuer=f"university-{rng.randrange(1, 9)}",
            institution=f"university-{rng.randrange(1, 9)}",
            irb_approved=rng.random() < 0.6)
    return credential_type.issue(
        issuer="insurance-registry",
        company=f"insurer-{rng.randrange(1, 6)}",
        contract_tier=rng.choice(["basic", "silver", "gold"]))


def generate_population(user_count: int, seed: int = 0,
                        roles_per_user: int = 2,
                        credentials_per_user: int = 1
                        ) -> SubjectDirectory:
    """A directory of *user_count* subjects with skewed roles."""
    rng = random.Random(seed)
    directory = SubjectDirectory(hospital_role_hierarchy())
    for index in range(user_count):
        role_names = {_zipf_choice(rng, ROLE_NAMES)
                      for _ in range(roles_per_user)}
        credentials = [random_credential(rng)
                       for _ in range(credentials_per_user)]
        directory.create(f"user{index:05d}",
                         roles={Role(r) for r in role_names},
                         credentials=credentials)
    return directory


@dataclass(frozen=True)
class NamedSubjects:
    """The fixed cast used by examples and integration tests."""

    doctor: Subject
    nurse: Subject
    researcher: Subject
    administrator: Subject
    stranger: Subject


def named_cast() -> NamedSubjects:
    return NamedSubjects(
        doctor=Subject("dr-grey", roles={Role("doctor")},
                       credentials=[PHYSICIAN_TYPE.issue(
                           issuer="medical-board",
                           department="oncology",
                           years_experience=12,
                           board_certified=True)]),
        nurse=Subject("nurse-joy", roles={Role("nurse")}),
        researcher=Subject("prof-oak", roles={Role("researcher")},
                           credentials=[RESEARCHER_TYPE.issue(
                               issuer="university-1",
                               institution="university-1",
                               irb_approved=True)]),
        administrator=Subject("admin-ada", roles={Role("administrator")}),
        stranger=Subject("randy-random"),
    )
