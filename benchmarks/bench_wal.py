#!/usr/bin/env python
"""Durable write path benchmarks for ``repro.wal`` (A13).

Four sections, each asserting its oracle before reporting a number:

* ``group_commit`` — concurrent writers through one shard's
  :class:`CommitPipeline` (one buffered write + one fsync per batch,
  real files) versus the naive baseline fsyncing every record.
  Oracle: the log scans back byte-identical and LSN-ordered.  Gate:
  group commit sustains at least ``GROUP_COMMIT_GATE`` x the naive
  per-write-fsync throughput;
* ``recovery_scaling`` — a multi-segment log scanned three ways: full
  sequential replay, parallel shard scans over worker processes
  (byte-identical result; wall-clock advisory on a single-CPU host),
  and replay after an incremental checkpoint truncated the covered
  prefix.  Gate: the checkpoint cuts replayed records and scan bytes
  by at least ``CHECKPOINT_CUT_GATE`` x;
* ``chaos_battery`` — the 60-seed kill-and-recover battery from
  :mod:`repro.wal.chaos` (torn-tail, corrupt-frame and device-fault
  overlays over the MemVfs power-loss model).  Oracle: every seed
  recovers byte-identical-or-typed, acknowledged records never lost;
* ``batch_linger_ablation`` — writer count x ``max_batch`` sweep for
  the EXPERIMENTS A13 table: how batch depth converts fsync cost into
  shared overhead.

``--quick`` shrinks workloads for the CI perf-smoke job (fewer chaos
seeds, smaller logs — the gates still hold because the ratios are
structural).  Writes ``BENCH_wal.json``.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import pathlib
import platform
import sys
import tempfile
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.output import (  # noqa: E402
    default_output,
    write_bench_json,
)
from repro.wal import (  # noqa: E402
    CommitPipeline,
    LsnAllocator,
    OsVfs,
    ShardedWal,
    WriteAheadLog,
    recover,
)
from repro.wal.chaos import SCENARIOS, run_chaos  # noqa: E402

DEFAULT_OUTPUT = default_output("wal")

#: Group commit must beat one-fsync-per-record by this factor: sharing
#: the sync across a batch is the whole reason the pipeline exists.
GROUP_COMMIT_GATE = 10.0
#: A checkpoint covering 90% of the log must cut replayed records (and
#: scanned bytes) by at least this factor.
CHECKPOINT_CUT_GATE = 5.0

CHAOS_SEEDS = 60
QUICK_CHAOS_SEEDS = 12

PAYLOAD = b"{'op': 'insert', 'collection': 'orders', 'doc': 'x'}" * 2


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_group_commit(quick: bool) -> tuple[dict, bool]:
    """Batched fsync vs one fsync per record, on real files.

    The grouped side models the store's ``group()`` write path:
    concurrent writers submit pipelined *windows* of records and then
    settle every ticket in the window (acks still gate on the fsync
    that covered each record).  The naive side is the traditional
    durable store — append, fsync, repeat — whose throughput is capped
    at ``1 / fsync_cost`` no matter how fast the CPU is.
    """
    naive_records = 100 if quick else 400
    writers = 8
    window = 128
    per_writer = 256 if quick else 1_024
    attempts = 3  # best-of: one CPU, scheduler noise is real
    total = writers * per_writer

    with tempfile.TemporaryDirectory() as tmp:
        log = WriteAheadLog(OsVfs(pathlib.Path(tmp) / "naive"), 0,
                            LsnAllocator())

        def naive():
            for _ in range(naive_records):
                log.append(PAYLOAD)
                log.sync()

        _, naive_s = _timed(naive)
        log.close()
        naive_per_s = naive_records / naive_s

        def grouped_attempt(attempt: int) -> tuple[float, dict, bool]:
            vfs = OsVfs(pathlib.Path(tmp) / f"grouped-{attempt}")
            pipeline = CommitPipeline(
                WriteAheadLog(vfs, 0, LsnAllocator()), max_batch=512)

            def writer():
                tickets = []
                for _ in range(per_writer):
                    tickets.append(pipeline.submit(PAYLOAD))
                    if len(tickets) >= window:
                        for ticket in tickets:
                            ticket.wait(timeout=30)
                        tickets.clear()
                for ticket in tickets:
                    ticket.wait(timeout=30)

            def grouped():
                with concurrent.futures.ThreadPoolExecutor(
                        writers) as pool:
                    for future in [pool.submit(writer)
                                   for _ in range(writers)]:
                        future.result()

            _, grouped_s = _timed(grouped)
            pipeline.close()
            pipeline.log.close()
            # Oracle: everything scans back, LSN-ordered, byte-identical.
            scan = recover(vfs, 1)
            lsns = [lsn for lsn, _ in scan.records]
            stats = pipeline.stats_snapshot()
            attempt_ok = (len(scan.records) == total
                          and lsns == sorted(lsns)
                          and all(payload == PAYLOAD
                                  for _, payload in scan.records)
                          and stats["syncs"] < total)  # batches shared
            return total / grouped_s, stats, attempt_ok

        runs = [grouped_attempt(n) for n in range(attempts)]
        ok = all(attempt_ok for _, _, attempt_ok in runs)
        grouped_per_s, stats, _ = max(runs, key=lambda run: run[0])

    advantage = grouped_per_s / naive_per_s
    gate_met = advantage >= GROUP_COMMIT_GATE
    return {
        "naive_records": naive_records,
        "naive_per_s": round(naive_per_s),
        "fsync_cost_us": round(1e6 * naive_s / naive_records, 1),
        "writers": writers,
        "window": window,
        "grouped_records": total,
        "grouped_per_s": round(grouped_per_s),
        "batches": stats["batches"],
        "mean_batch": round(stats["mean_batch"], 1),
        "advantage": round(advantage, 1),
        "advantage_gate": GROUP_COMMIT_GATE,
        "advantage_gate_met": gate_met,
    }, ok and gate_met


def bench_recovery_scaling(quick: bool) -> tuple[dict, bool]:
    """Replay cost: full log, parallel scans, after a checkpoint."""
    records = 10_000 if quick else 100_000
    shards = 4

    with tempfile.TemporaryDirectory() as tmp:
        vfs = OsVfs(tmp)
        wal = ShardedWal(vfs, shards, segment_bytes=256 * 1024)
        pipelines = [CommitPipeline(log, max_batch=512,
                                    max_lag=1 << 20, auto_flush=False)
                     for log in wal.logs]
        for n in range(records):
            pipelines[n % shards].submit(PAYLOAD)
            if n % 512 == 511:
                pipelines[n % shards].flush()
        for pipeline in pipelines:
            while pipeline.flush():
                pass
        wal.close()

        full, full_s = _timed(
            lambda: recover(vfs, shards, workers=1))
        parallel, parallel_s = _timed(
            lambda: recover(vfs, shards, workers=shards))
        identical = parallel.records == full.records

        # Incremental checkpoint at 90%: truncate the sealed prefix the
        # checkpoint covers, replay only the suffix.
        checkpoint_lsn = full.records[int(records * 0.9)][0]
        removed = wal.truncate_until(checkpoint_lsn)
        suffix, suffix_s = _timed(
            lambda: recover(vfs, shards, from_lsn=checkpoint_lsn))

    record_cut = len(full.records) / max(1, len(suffix.records))
    byte_cut = full.bytes_scanned / max(1, suffix.bytes_scanned)
    gate_met = (record_cut >= CHECKPOINT_CUT_GATE
                and byte_cut >= CHECKPOINT_CUT_GATE)
    ok = identical and gate_met and len(full.records) == records
    return {
        "records": records,
        "segments": full.segments,
        "bytes_scanned": full.bytes_scanned,
        "full_scan_s": round(full_s, 4),
        "full_records_per_s": round(records / full_s),
        "parallel_scan_s": round(parallel_s, 4),
        "parallel_used_processes": parallel.parallel,
        "parallel_identical": identical,
        # Honest basis: this container has one CPU, so process-parallel
        # scans pay fork cost without gaining cores; the gate here is
        # byte-identity, the wall-clock numbers are advisory.
        "parallel_gate_basis": "byte-identical result; wall-clock "
                               "advisory on single-CPU hosts",
        "checkpoint_lsn": checkpoint_lsn,
        "segments_truncated": removed,
        "suffix_records": len(suffix.records),
        "suffix_scan_s": round(suffix_s, 4),
        "record_cut": round(record_cut, 1),
        "byte_cut": round(byte_cut, 1),
        "cut_gate": CHECKPOINT_CUT_GATE,
        "cut_gate_met": gate_met,
    }, ok


def bench_chaos_battery(quick: bool) -> tuple[dict, bool]:
    """60 seeds of power loss: byte-identical-or-typed, every time."""
    seeds = range(QUICK_CHAOS_SEEDS if quick else CHAOS_SEEDS)
    by_scenario = {name: 0 for name in SCENARIOS}
    outcomes = {"identical": 0, "typed": 0}
    failed_seeds = []
    for seed in seeds:
        result = run_chaos(seed)
        by_scenario[result.scenario] += 1
        outcomes[result.outcome] += 1
        if not result.ok:
            failed_seeds.append(seed)
    ok = not failed_seeds
    return {
        "seeds": len(seeds),
        "recovered": len(seeds) - len(failed_seeds),
        "failed_seeds": failed_seeds,
        "by_scenario": by_scenario,
        "outcomes": outcomes,
    }, ok


def bench_batch_linger_ablation(quick: bool) -> tuple[dict, bool]:
    """Throughput across writer count x max_batch (A13 table)."""
    per_writer = 150 if quick else 500
    writer_counts = (1, 8)
    batch_sizes = (1, 16, 256)
    points = []
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        for writers in writer_counts:
            for max_batch in batch_sizes:
                vfs = OsVfs(
                    pathlib.Path(tmp) / f"w{writers}-b{max_batch}")
                pipeline = CommitPipeline(
                    WriteAheadLog(vfs, 0, LsnAllocator()),
                    max_batch=max_batch)

                def writer():
                    for _ in range(per_writer):
                        pipeline.submit(PAYLOAD).wait(timeout=30)

                def run():
                    with concurrent.futures.ThreadPoolExecutor(
                            writers) as pool:
                        for future in [pool.submit(writer)
                                       for _ in range(writers)]:
                            future.result()

                _, elapsed = _timed(run)
                pipeline.close()
                total = writers * per_writer
                stats = pipeline.stats_snapshot()
                ok = ok and stats["records_flushed"] == total
                points.append({
                    "writers": writers,
                    "max_batch": max_batch,
                    "records_per_s": round(total / elapsed),
                    "mean_batch": round(stats["mean_batch"], 1),
                    "syncs": stats["syncs"],
                })
    # Structural check: at 8 writers, real batching must beat
    # batch-of-one (that configuration degenerates to naive fsyncs).
    eight = {p["max_batch"]: p["records_per_s"]
             for p in points if p["writers"] == 8}
    ok = ok and eight[256] > eight[1]
    return {"per_writer": per_writer, "sweep": points}, ok


SECTIONS = (
    ("group_commit", bench_group_commit),
    ("recovery_scaling", bench_recovery_scaling),
    ("chaos_battery", bench_chaos_battery),
    ("batch_linger_ablation", bench_batch_linger_ablation),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads for the CI smoke job")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "oracles": {},
    }
    failures = []
    for name, runner in SECTIONS:
        section, ok = runner(args.quick)
        report[name] = section
        report["oracles"][name] = ok
        if not ok:
            failures.append(name)
        headline = {k: v for k, v in section.items()
                    if k in ("advantage", "record_cut", "byte_cut",
                             "recovered", "seeds", "grouped_per_s")}
        print(f"{name}: {'ok' if ok else 'ORACLE/GATE FAILED'} {headline}")

    for written in write_bench_json("wal", report, output=args.output):
        print(f"wrote {written}")
    if failures:
        print(f"oracle or gate failure in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
