#!/usr/bin/env python
"""Multi-core serving benchmarks for ``repro.multicore`` (A12).

The workload is the one the multicore tier exists for:
content-dependent authorization.  The policy compiler already makes
metadata-only decisions nearly free (BENCH_compile), so shipping those
to another core buys nothing — but a policy whose *condition* is an
XPath predicate over the record being read (the paper's
content-dependent access control) must parse and query the payload on
every request.  That per-request CPU cannot be precompiled away, and it
is exactly what the dispatcher ships to N forked event-loop workers.

Three sections, each asserting its oracle before reporting a number:

* ``closed_loop`` — the process-per-core dispatcher (admission →
  per-worker pickle-5 frames → shard evaluation in N forked workers)
  against the single-process asyncio gateway on the same workload.
  Oracle: byte-identical serialized responses on **every** swept
  configuration.  Gate: capacity on >= 4 cores must reach
  ``SPEEDUP_OVER_ASYNC_GATE`` x the async gateway's best — measured
  directly when the machine has >= 4 cores (``gate_basis:
  "measured"``), otherwise projected from measured inputs by the
  scaling model below (``gate_basis: "scaling_model"``);
* ``scaling_model`` — the two quantities that bound multicore
  throughput, each *measured*, never assumed: the per-worker
  evaluation rate (direct ``decide_batch`` over the same shard-grouped
  batches) and the dispatcher-side per-request overhead (admission +
  interning + framing), taken by differencing a one-logical-worker
  ``workers=0`` run — which round-trips every frame through the
  pickle-5 codec — against pure evaluation.  That difference charges
  both codec directions to the dispatcher, so the ceiling is an
  *underestimate*: honest in the conservative direction.  Projected
  capacity at N workers is ``min(dispatcher_ceiling, N x eval_rate)``;
  every model input lands in the report so the projection is
  auditable;
* ``degraded`` — the kill-one-worker overlay: a worker dies; the
  survivors' responses stay byte-identical to the oracle and the
  victim's shards fail with typed
  :class:`~repro.core.errors.ReplicaUnavailable` — degraded, never
  wrong.

``--quick`` shrinks the workload for the CI perf-smoke job (which
gates on the oracles plus a relaxed capacity floor); full runs
establish the numbers EXPERIMENTS.md records.  Writes
``BENCH_multicore.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import multiprocessing
import os
import pathlib
import platform
import random
import sys
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from bench_scale import response_bytes, timed  # noqa: E402
from repro.bench.output import (  # noqa: E402
    default_output,
    write_bench_json,
)
from repro.core.credentials import has_role  # noqa: E402
from repro.core.errors import ParseError, ReplicaUnavailable  # noqa: E402
from repro.core.policy import Action, deny, grant  # noqa: E402
from repro.datagen.documents import DEPARTMENTS, DIAGNOSES  # noqa: E402
from repro.datagen.population import generate_population  # noqa: E402
from repro.gateway import (  # noqa: E402
    AsyncRequestGateway,
    EpochalShardRouter,
    TenantConfig,
)
from repro.multicore import MulticoreGateway  # noqa: E402
from repro.scale.gateway import Request  # noqa: E402
from repro.xmldb.parser import parse as parse_xml  # noqa: E402
from repro.xmldb.xpath import select_elements  # noqa: E402

DEFAULT_OUTPUT = default_output("multicore")

#: On >= 4 cores the multicore tier must reach this multiple of the
#: single-process async gateway's best throughput.
SPEEDUP_OVER_ASYNC_GATE = 3.0
#: The CI smoke job runs a tiny workload where constant costs weigh
#: more; it gates on the oracles plus this relaxed floor.
QUICK_SPEEDUP_GATE = 2.0

SHARDS = 8
BATCH = 64
WORKER_SWEEP = (1, 2, 4)
WIDE_OPEN = TenantConfig(rate=1e12, burst=1e12)

#: Path heads — one per hospital-network site, so the workload spreads
#: across every shard instead of hashing to one.
SITES = ("hospital", "clinic", "research", "pharmacy",
         "billing", "archive", "school", "insurer")


def cores_available() -> int:
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return len(affinity(0))
        except OSError:  # pragma: no cover - exotic platform
            pass
    return os.cpu_count() or 1


# -- the content-dependent workload --------------------------------------

def record_markup(rng: random.Random, record_id: str,
                  visits: int) -> str:
    """One patient record as markup — the payload a READ inspects."""
    body = "".join(
        f'<visit n="{v + 1}">'
        f"<date>2003-{rng.randrange(1, 13):02d}-"
        f"{rng.randrange(1, 29):02d}</date>"
        f"<diagnosis>{rng.choice(DIAGNOSES)}</diagnosis>"
        f"<amount>{rng.randrange(50, 2000)}</amount>"
        "</visit>"
        for v in range(visits))
    return (f'<record id="{record_id}">'
            f"<department>{rng.choice(DEPARTMENTS)}</department>"
            f"{body}</record>")


def _record_root(payload):
    if not isinstance(payload, str):
        return None
    try:
        return parse_xml(payload).root
    except ParseError:
        # Fail closed: a condition over unreadable content never grants.
        return None


def lacks_diagnosis(term: str):
    """Content condition: no visit in the record carries *term*."""
    def condition(payload) -> bool:
        root = _record_root(payload)
        if root is None:
            return False
        return not select_elements(f"//visit[diagnosis='{term}']", root)
    return condition


def billing_within(limit: int):
    """Content condition: the record's visit amounts sum under *limit*."""
    def condition(payload) -> bool:
        root = _record_root(payload)
        if root is None:
            return False
        total = sum(int(el.text()) for el in
                    select_elements("//amount", root))
        return total <= limit
    return condition


def content_workload(quick: bool):
    """Policies with XPath content conditions + payload-bearing reads.

    Returns ``(policies, requests)`` — most requests carry the record
    markup their decision must inspect; a metadata-only fraction
    exercises the memoized fast path alongside.
    """
    record_visits = 4 if quick else 6
    records_per_site = 4 if quick else 8
    subject_count = 30 if quick else 80
    request_count = 480 if quick else 1920

    rng = random.Random(11)
    directory = generate_population(subject_count, seed=11)
    subjects = [directory.get(f"user{i:05d}")
                for i in range(subject_count)]

    policies = []
    for site in SITES:
        policies.append(grant(has_role("chief-physician"), Action.READ,
                              f"{site}/**"))
        policies.append(grant(has_role("doctor"), Action.READ,
                              f"{site}/records/**",
                              condition=lacks_diagnosis(
                                  rng.choice(DIAGNOSES))))
        policies.append(grant(has_role("nurse"), Action.READ,
                              f"{site}/records/**",
                              condition=billing_within(
                                  rng.randrange(2000, 6000))))
        policies.append(grant(has_role("researcher"), Action.READ,
                              f"{site}/records/**",
                              condition=lacks_diagnosis(
                                  rng.choice(DIAGNOSES))))
        policies.append(deny(has_role("patient"), Action.READ,
                             f"{site}/records/**", priority=1))

    paths, payloads = [], {}
    for site in SITES:
        for index in range(records_per_site):
            path = f"{site}/records/r{index + 1}/clinical"
            paths.append(path)
            payloads[path] = record_markup(rng, f"r{index + 1}",
                                           record_visits)
    requests = []
    for _ in range(request_count):
        path = rng.choice(paths)
        # A quarter of reads are metadata probes (no payload): they
        # take the memoized compiled-cell path and keep the fast lane
        # honest in the same run.
        payload = payloads[path] if rng.random() < 0.75 else None
        requests.append(Request(rng.choice(subjects), Action.READ,
                                path, payload))
    return policies, requests


def reference_baseline(policies, requests):
    """Serial compiled evaluation in request order — the byte oracle."""
    router = EpochalShardRouter.from_policies(
        policies, shard_count=SHARDS, compile_policies=True)
    decisions = []
    for request in requests:
        shard = router.shard_for_path(request.path)
        decisions.extend(router.engine(shard).decide_batch(
            [request.triple()]))
    return response_bytes(decisions)


# -- gateway runners -----------------------------------------------------

def run_async_gateway(policies, requests):
    """Best-of-two single-process async gateway run (the incumbent)."""
    limit = len(requests) + 1
    router = EpochalShardRouter.from_policies(policies,
                                              shard_count=SHARDS)

    async def scenario():
        gateway = AsyncRequestGateway(
            router, batch_size=BATCH, queue_limit=limit,
            high_watermark=limit, low_watermark=limit,
            auto_dispatch=False, default_tenant=WIDE_OPEN)
        start = time.perf_counter()
        futures = [gateway.submit_nowait("bench", request)
                   for request in requests]
        await gateway.process_pending()
        decisions = [future.result() for future in futures]
        return time.perf_counter() - start, decisions

    best_s, decisions = asyncio.run(scenario())
    run_s, decisions = asyncio.run(scenario())
    return min(best_s, run_s), decisions


def run_multicore(policies, requests, workers: int,
                  logical_workers: int | None = None):
    """One multicore run → (elapsed, decisions, stats snapshot)."""
    limit = len(requests) + 1

    async def scenario():
        gateway = MulticoreGateway(
            policies, workers=workers,
            logical_workers=logical_workers or 1,
            shard_count=SHARDS, batch_size=BATCH, queue_limit=limit,
            high_watermark=limit, low_watermark=limit,
            auto_dispatch=workers > 0, default_tenant=WIDE_OPEN)
        async with gateway:
            start = time.perf_counter()
            futures = [gateway.submit_nowait("bench", request)
                       for request in requests]
            if workers == 0:
                await gateway.process_pending()
            decisions = await asyncio.gather(*futures)
            elapsed = time.perf_counter() - start
            return elapsed, decisions, gateway.stats.snapshot()

    return asyncio.run(scenario())


def stage_percentiles(stats: dict) -> dict:
    """The per-stage latency keys a snapshot carries (if recorded)."""
    return {key: value for key, value in sorted(stats.items())
            if key.startswith("stage_")
            and key.endswith(("_count", "_mean_s", "_p50_s", "_p99_s"))}


# -- 1 + 2. closed loop and the scaling model ----------------------------

def measure_model_inputs(policies, requests, baseline):
    """Measure the two pipeline bounds.  Returns (inputs, byte_ok)."""
    router = EpochalShardRouter.from_policies(
        policies, shard_count=SHARDS, compile_policies=True)
    by_shard: dict[int, list] = {}
    for request in requests:
        shard = router.shard_for_path(request.path)
        by_shard.setdefault(shard, []).append(request.triple())

    def evaluate_all():
        out = []
        for shard in sorted(by_shard):
            out.extend(router.engine(shard).decide_batch(by_shard[shard]))
        return out

    evaluate_all()                      # warm the compiled tables
    eval_s = min(timed(evaluate_all)[0] for _ in range(3))
    worker_eval_rps = len(requests) / eval_s

    # Whole pipeline on one logical worker: dispatch cost is the run's
    # wall time minus the evaluation time the worker itself reported
    # *inside the same run* (``evaluate_s`` in the stats), so the
    # difference never spans two separately-noisy runs.  workers=0
    # round-trips every frame through the pickle-5 codec, so framing
    # and interning costs are real — and both codec directions land on
    # the dispatcher side, making the ceiling conservative.  Best of
    # three, every run byte-checked.
    byte_ok = True
    best = None
    for _ in range(3):
        total_s, decisions, stats = run_multicore(
            policies, requests, workers=0, logical_workers=1)
        byte_ok = byte_ok and response_bytes(decisions) == baseline
        dispatch_s = max(total_s - stats["evaluate_s"], 1e-9)
        if best is None or dispatch_s < best[0]:
            best = (dispatch_s, total_s, stats)
    dispatch_total_s, total_s, stats = best

    dispatch_s_per_request = dispatch_total_s / len(requests)
    return {
        "worker_eval_rps": round(worker_eval_rps),
        "eval_s_per_request": round(eval_s / len(requests), 9),
        "single_pipeline_rps": round(len(requests) / total_s),
        "dispatch_s_per_request": round(dispatch_s_per_request, 9),
        "dispatcher_ceiling_rps": round(1.0 / dispatch_s_per_request),
        "stage_percentiles": stage_percentiles(stats),
    }, byte_ok


def modeled_rps(inputs: dict, workers: int) -> float:
    """Pipeline bound: the dispatcher core feeds N evaluating cores."""
    return min(float(inputs["dispatcher_ceiling_rps"]),
               workers * float(inputs["worker_eval_rps"]))


def bench_closed_loop(quick: bool) -> tuple[dict, bool]:
    policies, requests = content_workload(quick)
    baseline = reference_baseline(policies, requests)

    async_s, async_decisions = run_async_gateway(policies, requests)
    async_rps = len(requests) / async_s
    byte_ok = response_bytes(async_decisions) == baseline

    cores = cores_available()
    can_fork = "fork" in multiprocessing.get_all_start_methods()
    sweep = []
    measured_at_4 = None
    for workers in (WORKER_SWEEP if can_fork else ()):
        elapsed, decisions, stats = run_multicore(
            policies, requests, workers=workers)
        identical = response_bytes(decisions) == baseline
        byte_ok = byte_ok and identical
        rps = len(requests) / elapsed
        if workers == 4:
            measured_at_4 = rps
        sweep.append({
            "workers": workers,
            "elapsed_s": round(elapsed, 4),
            "requests_per_s": round(rps),
            "speedup_vs_async": round(rps / async_rps, 2),
            "oracle_byte_identical": identical,
            "stage_percentiles": stage_percentiles(stats),
        })

    model_inputs, model_ok = measure_model_inputs(policies, requests,
                                                  baseline)
    byte_ok = byte_ok and model_ok
    projection = [{
        "workers": n,
        "modeled_requests_per_s": round(modeled_rps(model_inputs, n)),
        "modeled_speedup_vs_async": round(
            modeled_rps(model_inputs, n) / async_rps, 2),
    } for n in (1, 2, 4, 8)]

    gate = QUICK_SPEEDUP_GATE if quick else SPEEDUP_OVER_ASYNC_GATE
    if cores >= 4 and measured_at_4 is not None:
        gate_basis = "measured"
        capacity_rps = measured_at_4
    else:
        # Fewer cores than workers: forked processes time-slice one
        # CPU, so the sweep cannot show scaling.  Gate on the
        # measured-inputs projection at 4 workers and say so.
        gate_basis = "scaling_model"
        capacity_rps = modeled_rps(model_inputs, 4)
    speedup = capacity_rps / async_rps
    gate_met = speedup >= gate

    return {
        "requests": len(requests),
        "policies": len(policies),
        "cores_available": cores,
        "async_best_requests_per_s": round(async_rps),
        "measured_sweep": sweep,
        "scaling_model": {
            "inputs": model_inputs,
            "projection": projection,
        },
        "gate_basis": gate_basis,
        "capacity_at_4_workers_rps": round(capacity_rps),
        "speedup_over_async": round(speedup, 2),
        "speedup_gate": gate,
        "oracle_byte_identical": byte_ok,
        "oracle_speedup_gate_met": gate_met,
    }, byte_ok and gate_met


# -- 3. degraded service -------------------------------------------------

def bench_degraded(quick: bool) -> tuple[dict, bool]:
    policies, requests = content_workload(quick)
    workers = 4
    victim = 1
    limit = len(requests) + 1

    router = EpochalShardRouter.from_policies(
        policies, shard_count=SHARDS, compile_policies=True)
    expected = []
    for request in requests:
        shard = router.shard_for_path(request.path)
        expected.append(response_bytes(router.engine(shard).decide_batch(
            [request.triple()])))

    async def scenario():
        gateway = MulticoreGateway(
            policies, workers=0, logical_workers=workers,
            shard_count=SHARDS, batch_size=BATCH, queue_limit=limit,
            high_watermark=limit, low_watermark=limit,
            auto_dispatch=False, default_tenant=WIDE_OPEN)
        async with gateway:
            gateway.kill_worker(victim)
            futures = [gateway.submit_nowait("bench", request)
                       for request in requests]
            await gateway.process_pending()
            outcomes = []
            for index, future in enumerate(futures):
                shard = gateway.router.shard_for_path(
                    requests[index].path)
                owner = gateway.worker_for_shard(shard)
                error = future.exception()
                outcomes.append((owner, error,
                                 None if error is not None
                                 else response_bytes([future.result()])))
            return outcomes

    started = time.perf_counter()
    outcomes = asyncio.run(scenario())
    elapsed = time.perf_counter() - started

    served = failed = 0
    ok = True
    for index, (owner, error, payload) in enumerate(outcomes):
        if owner == victim:
            failed += 1
            ok = ok and isinstance(error, ReplicaUnavailable)
        else:
            served += 1
            ok = ok and error is None and payload == expected[index]
    ok = ok and served > 0 and failed > 0
    return {
        "workers": workers,
        "killed_worker": victim,
        "served": served,
        "failed_typed": failed,
        "served_fraction": round(served / len(outcomes), 3),
        "elapsed_s": round(elapsed, 4),
        "oracle_survivors_byte_identical": ok,
    }, ok


SECTIONS = (
    ("closed_loop", bench_closed_loop),
    ("degraded", bench_degraded),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for the CI smoke job")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cores_available": cores_available(),
        },
        "oracles": {},
    }
    failures = []
    for name, runner in SECTIONS:
        section, ok = runner(args.quick)
        report[name] = section
        report["oracles"][name] = ok
        if not ok:
            failures.append(name)
        headline = {k: v for k, v in section.items()
                    if k in ("capacity_at_4_workers_rps", "gate_basis",
                             "speedup_over_async", "served_fraction")}
        print(f"{name}: {'ok' if ok else 'ORACLE/GATE FAILED'} {headline}")

    for written in write_bench_json("multicore", report,
                                    output=args.output):
        print(f"wrote {written}")
    if failures:
        print(f"oracle or gate failure in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
