#!/usr/bin/env python
"""Throughput and isolation benchmarks for ``repro.gateway`` (A10).

Three sections, each asserting its oracle before reporting a number:

* ``closed_loop`` — the asyncio gateway (admission -> deficit-round-
  robin batching -> compiled epochal shard snapshots) swept over
  shards x batch size against a serial one-at-a-time evaluator.
  Oracle: byte-identical serialized responses for every configuration.
  Gate: best throughput >= ``SPEEDUP_OVER_SCALE_GATE`` x the best
  sweep point recorded in ``BENCH_scale.json`` (the threaded
  gateway's ceiling) — the async rebuild must not merely match the
  thread pool, it must bury it;
* ``tenant_isolation`` — one noisy tenant submitting at 10x its token
  bucket rate next to a well-behaved tenant.  Oracle: the
  well-behaved tenant's p99 latency and completion rate stay within
  2x of its solo baseline — fairness is a measured property, not a
  promise;
* ``streaming`` — chunked dissemination from interned snapshot
  fragments, cold pool vs warmed pool.  Oracle: the concatenated
  chunks are byte-identical to the serial serializer's output.

``--quick`` shrinks workloads for the CI perf-smoke job (which gates
on the oracles plus a relaxed speedup floor); full runs establish the
numbers EXPERIMENTS.md records.  Writes ``BENCH_gateway.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import platform
import sys
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from bench_scale import (  # noqa: E402
    authorization_workload,
    response_bytes,
    timed,
)
from repro.bench.output import (  # noqa: E402
    default_output,
    write_bench_json,
)
from repro.core.errors import Overloaded  # noqa: E402
from repro.core.evaluator import PolicyEvaluator  # noqa: E402
from repro.gateway import (  # noqa: E402
    AsyncRequestGateway,
    EpochalShardRouter,
    TenantConfig,
    collect,
)
from repro.scale.gateway import Request  # noqa: E402
from repro.snap.intern import InternPool  # noqa: E402
from repro.snap.xmlstore import SnapshotXmlDatabase  # noqa: E402

DEFAULT_OUTPUT = default_output("gateway")
SCALE_RESULTS = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_scale.json")

#: Full runs must beat the threaded gateway's best sweep point by
#: this factor (the ISSUE's acceptance gate).
SPEEDUP_OVER_SCALE_GATE = 10.0
#: The CI smoke job runs tiny workloads where constant costs dominate;
#: it gates on the oracles plus this relaxed floor.
QUICK_SPEEDUP_GATE = 2.0
#: A well-behaved tenant's p99 and completion rate must stay within
#: this factor of its solo baseline while a noisy tenant floods.
ISOLATION_FACTOR = 2.0


def scale_best_rps() -> float | None:
    """Best closed-loop sweep point the threaded gateway recorded."""
    try:
        report = json.loads(SCALE_RESULTS.read_text(encoding="utf-8"))
        return float(max(point["requests_per_s"]
                         for point in report["closed_loop"]["sweep"]))
    except (OSError, KeyError, ValueError):
        return None


def stage_percentiles(stats: dict) -> dict:
    """Per-stage latency keys from a stats snapshot — where each
    request's time went (queue wait vs evaluation), not just the total."""
    return {key: value for key, value in sorted(stats.items())
            if key.startswith("stage_")
            and key.endswith(("_count", "_mean_s", "_p50_s", "_p99_s"))}


# -- 1. closed loop ------------------------------------------------------

def _run_async_gateway(router, requests, batch_size: int):
    limit = len(requests) + 1

    async def scenario():
        gateway = AsyncRequestGateway(
            router, batch_size=batch_size, queue_limit=limit,
            high_watermark=limit, low_watermark=limit,
            auto_dispatch=False,
            default_tenant=TenantConfig(rate=1e12, burst=1e12))
        start = time.perf_counter()
        futures = [gateway.submit_nowait("bench", request)
                   for request in requests]
        await gateway.process_pending()
        decisions = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
        return elapsed, decisions, gateway.stats.snapshot()

    return asyncio.run(scenario())


def bench_closed_loop(quick: bool) -> tuple[dict, bool]:
    base, triples = authorization_workload(quick)
    requests = [Request(*triple) for triple in triples]

    serial_evaluator = PolicyEvaluator(base)
    serial_s, serial = timed(
        lambda: [serial_evaluator.decide(*t) for t in triples])
    baseline = response_bytes(serial)

    configs = [(4, 64), (8, 256)] if quick else \
        [(4, 64), (8, 256), (8, 1024)]
    sweep = []
    ok = True
    best_rps = 0.0
    for shards, batch_size in configs:
        router = EpochalShardRouter.from_policies(base,
                                                  shard_count=shards)
        # Warm run pays one-time costs (table population, shard memo);
        # then two timed runs, best-of kept — every run oracle-checked.
        _, warm_decisions, _ = _run_async_gateway(router, requests,
                                                  batch_size)
        identical = response_bytes(warm_decisions) == baseline
        elapsed, stats = float("inf"), {}
        for _ in range(2):
            run_s, decisions, run_stats = _run_async_gateway(
                router, requests, batch_size)
            identical = (identical
                         and response_bytes(decisions) == baseline)
            if run_s < elapsed:
                elapsed, stats = run_s, run_stats
        ok = ok and identical
        rps = len(requests) / elapsed
        best_rps = max(best_rps, rps)
        sweep.append({
            "shards": shards,
            "batch": batch_size,
            "elapsed_s": round(elapsed, 4),
            "requests_per_s": round(rps),
            "speedup_vs_serial": round(serial_s / elapsed, 1),
            "latency_p50_s": stats["latency_p50_s"],
            "latency_p99_s": stats["latency_p99_s"],
            "latency_p999_s": stats["latency_p999_s"],
            "stage_percentiles": stage_percentiles(stats),
            "oracle_byte_identical": identical,
        })

    scale_best = scale_best_rps()
    if scale_best is not None:
        gate = (QUICK_SPEEDUP_GATE if quick
                else SPEEDUP_OVER_SCALE_GATE)
        speedup_over_scale = best_rps / scale_best
        gate_met = speedup_over_scale >= gate
    else:
        # No BENCH_scale.json around (fresh checkout): fall back to a
        # floor against the serial evaluator so the gate still bites.
        gate = (QUICK_SPEEDUP_GATE if quick
                else SPEEDUP_OVER_SCALE_GATE)
        speedup_over_scale = None
        gate_met = (best_rps * serial_s / len(requests)) >= gate
    ok = ok and gate_met
    return {
        "requests": len(requests),
        "serial_s": round(serial_s, 4),
        "serial_requests_per_s": round(len(requests) / serial_s),
        "sweep": sweep,
        "best_requests_per_s": round(best_rps),
        "scale_best_requests_per_s": (round(scale_best)
                                      if scale_best else None),
        "speedup_over_scale_best": (round(speedup_over_scale, 1)
                                    if speedup_over_scale else None),
        "speedup_gate": gate,
        "oracle_speedup_gate_met": gate_met,
        "oracle_byte_identical": ok,
    }, ok


# -- 2. tenant isolation -------------------------------------------------

STEADY = TenantConfig(rate=4000.0, burst=64.0, priority=2)
NOISY = TenantConfig(rate=4000.0, burst=64.0, priority=0)


def _isolation_run(router, requests, waves: int,
                   with_noisy: bool) -> dict:
    """Drive the steady tenant through *waves* bucket-sized waves;
    optionally flood a noisy tenant at 10x its bucket rate alongside.

    Latencies are measured client-side around each awaited submit, so
    they include queueing behind whatever the noisy tenant got in."""
    wave_size = int(STEADY.burst)

    async def scenario():
        gateway = AsyncRequestGateway(router, batch_size=64,
                                      queue_limit=8192,
                                      default_tenant=None)
        gateway.register("steady", STEADY)
        gateway.register("noisy", NOISY)
        latencies: list[float] = []
        steady_done = 0
        noisy_admitted = 0
        noisy_shed = 0
        stop = asyncio.Event()

        async def steady_tenant():
            nonlocal steady_done
            for wave in range(waves):
                offset = (wave * wave_size) % len(requests)
                batch = [requests[(offset + i) % len(requests)]
                         for i in range(wave_size)]
                started = time.perf_counter()
                results = await asyncio.gather(
                    *[gateway.submit("steady", request)
                      for request in batch])
                latencies.append(time.perf_counter() - started)
                steady_done += len(results)
                # Pace at the bucket rate so this tenant stays
                # well-behaved: one wave per burst refill.
                await asyncio.sleep(wave_size / STEADY.rate)
            stop.set()

        async def noisy_tenant():
            nonlocal noisy_admitted, noisy_shed
            index = 0
            while not stop.is_set():
                # 10x the bucket rate: submit 10 waves' worth per
                # refill interval, eat the Overloaded responses.
                for _ in range(wave_size):
                    try:
                        gateway.submit_nowait(
                            "noisy", requests[index % len(requests)])
                        noisy_admitted += 1
                    except Overloaded:
                        noisy_shed += 1
                    index += 1
                await asyncio.sleep(wave_size / (10.0 * NOISY.rate))

        tasks = [asyncio.ensure_future(steady_tenant())]
        if with_noisy:
            tasks.append(asyncio.ensure_future(noisy_tenant()))
        await tasks[0]
        stop.set()
        for task in tasks[1:]:
            await task
        await gateway.close()
        return latencies, steady_done, noisy_admitted, noisy_shed

    latencies, steady_done, noisy_admitted, noisy_shed = asyncio.run(
        scenario())
    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1,
                      int(0.99 * len(ordered)))] if ordered else 0.0
    return {
        "steady_submitted": waves * wave_size,
        "steady_completed": steady_done,
        "completion_rate": round(steady_done / (waves * wave_size), 4),
        "wave_p99_s": round(p99, 6),
        "noisy_admitted": noisy_admitted,
        "noisy_shed": noisy_shed,
    }


def bench_tenant_isolation(quick: bool) -> tuple[dict, bool]:
    base, triples = authorization_workload(quick)
    requests = [Request(*triple) for triple in triples]
    waves = 10 if quick else 30
    router = EpochalShardRouter.from_policies(base, shard_count=8)

    solo = _isolation_run(router, requests, waves, with_noisy=False)
    contended = _isolation_run(router, requests, waves,
                               with_noisy=True)

    p99_ratio = (contended["wave_p99_s"]
                 / max(solo["wave_p99_s"], 1e-9))
    completion_ratio = (solo["completion_rate"]
                        / max(contended["completion_rate"], 1e-9))
    isolated = (p99_ratio <= ISOLATION_FACTOR
                and completion_ratio <= ISOLATION_FACTOR)
    shed_worked = contended["noisy_shed"] > 0
    ok = isolated and shed_worked
    return {
        "solo": solo,
        "contended": contended,
        "p99_ratio": round(p99_ratio, 2),
        "completion_ratio": round(completion_ratio, 2),
        "isolation_factor": ISOLATION_FACTOR,
        "oracle_noisy_tenant_shed": shed_worked,
        "oracle_steady_tenant_isolated": isolated,
    }, ok


# -- 3. streaming --------------------------------------------------------

def bench_streaming(quick: bool) -> tuple[dict, bool]:
    record_count = 400 if quick else 2000
    repeats = 10 if quick else 40
    db = SnapshotXmlDatabase()
    db.create_collection("c")
    db.insert("c", "d", "<doc>" + "".join(
        f"<rec id=\"{i}\"><name>entity {i}</name>"
        f"<val>payload value {i}</val></rec>"
        for i in range(record_count)) + "</doc>")
    db.publish()
    expected = InternPool().serialize_document(
        db.current().document("c", "d"))

    def engine():
        from repro.core.policy import PolicyBase
        from repro.scale.batch import BatchDecisionEngine
        return BatchDecisionEngine(PolicyEvaluator(PolicyBase()))

    async def run_streams():
        gateway = AsyncRequestGateway(
            engine(), store=db, auto_dispatch=False,
            default_tenant=TenantConfig(rate=1e12, burst=1e12))
        # Cold: the gateway's pool has never serialized this tree.
        cold_start = time.perf_counter()
        cold = await collect(gateway.stream_document("t", "c", "d"))
        cold_s = time.perf_counter() - cold_start
        # Warm the pool the way the serial path would, then stream.
        db.pool.serialize_document(db.current().document("c", "d"))
        warm_start = time.perf_counter()
        for _ in range(repeats):
            warm = await collect(
                gateway.stream_document("t", "c", "d"))
        warm_s = (time.perf_counter() - warm_start) / repeats
        return cold, cold_s, warm, warm_s, gateway.stats.snapshot()

    cold, cold_s, warm, warm_s, stats = asyncio.run(run_streams())
    ok = cold == expected and warm == expected
    size = len(expected.encode())
    return {
        "document_bytes": size,
        "cold_stream_s": round(cold_s, 5),
        "cold_mb_per_s": round(size / cold_s / 1e6, 1),
        "warm_stream_s": round(warm_s, 5),
        "warm_mb_per_s": round(size / warm_s / 1e6, 1),
        "warm_over_cold": round(cold_s / warm_s, 1),
        "streams": stats["streams"],
        "stream_chunks": stats["stream_chunks"],
        "stage_percentiles": stage_percentiles(stats),
        "oracle_byte_identical": ok,
    }, ok


SECTIONS = (
    ("closed_loop", bench_closed_loop),
    ("tenant_isolation", bench_tenant_isolation),
    ("streaming", bench_streaming),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads for the CI smoke job")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "oracles": {},
    }
    failures = []
    for name, runner in SECTIONS:
        section, ok = runner(args.quick)
        report[name] = section
        report["oracles"][name] = ok
        if not ok:
            failures.append(name)
        headline = {k: v for k, v in section.items()
                    if k in ("best_requests_per_s",
                             "speedup_over_scale_best",
                             "p99_ratio", "warm_mb_per_s")}
        print(f"{name}: {'ok' if ok else 'ORACLE/GATE FAILED'} {headline}")

    for written in write_bench_json("gateway", report,
                                    output=args.output):
        print(f"wrote {written}")
    if failures:
        print(f"oracle or gate failure in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
