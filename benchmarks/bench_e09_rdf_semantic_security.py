"""Benchmark wrapper for E9 (RDF semantic-level enforcement)."""


def test_e09_rdf_semantic_security(record):
    result = record("E9")
    for row in result.rows:
        naive_visible, semantic_visible = row[2], row[3]
        derived_leaks, reified_leaks = row[4], row[5]
        # The syntactic strawman leaks derived facts and reifications.
        assert derived_leaks > 0
        assert reified_leaks > 0
        # Semantic enforcement shows strictly less than the leaky mode.
        assert semantic_visible < naive_visible
    # Leakage grows with the graph.
    leaks = [row[4] for row in result.rows]
    assert leaks == sorted(leaks)
    # The §5 declassification example worked.
    context_line = next(o for o in result.observations
                        if "declassification" in o)
    assert "hidden during wartime=True" in context_line
    assert "visible after=True" in context_line
