"""Benchmark wrapper for E5 (Merkle-authenticated UDDI answers)."""


def test_e05_uddi_authentication(record):
    result = record("E5")
    for row in result.rows:
        businesses, merkle_sigs, baseline_sigs = row[0], row[1], row[2]
        # One summary signature per entry...
        assert merkle_sigs == businesses
        # ...vs one per view for the baseline (strictly more).
        assert baseline_sigs > merkle_sigs
    # Provider-side signing cost follows the signature counts.
    assert all(row[3] < row[4] for row in result.rows)
