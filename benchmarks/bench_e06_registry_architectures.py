"""Benchmark wrapper for E6 (two-party vs third-party registries)."""


def test_e06_registry_architectures(record):
    result = record("E6")
    by_regime = {(row[0], row[1]): row for row in result.rows}
    # Honest deployments leak nothing.
    assert by_regime[("two-party", "honest")][2] == 0
    assert by_regime[("third-party", "honest")][2] == 0
    # A compromised agency leaks confidentiality...
    assert by_regime[("third-party", "compromised")][2] > 0
    # ...but integrity survives: zero forgeries accepted anywhere.
    assert all(row[3] == 0 for row in result.rows)
