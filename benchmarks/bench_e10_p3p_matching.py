"""Benchmark wrapper for E10 (P3P matching and propagation)."""


def test_e10_p3p_matching(record):
    result = record("E10")
    accepted = [row[2] for row in result.rows]
    # Acceptance falls monotonically with consumer strictness.
    assert accepted == sorted(accepted, reverse=True)
    assert accepted[0] == 80  # anything-goes accepts all
    assert accepted[-1] < accepted[0]
    # Propagation checking catches broadening chains the entry-only
    # check accepts.
    chain_lines = [o for o in result.observations if o.startswith("len=")]
    assert chain_lines
    for line in chain_lines:
        caught = int(line.rsplit("broadening caught ", 1)[1])
        assert caught > 0
    audit_line = next(o for o in result.observations if "audit" in o)
    assert "passes 5/5" in audit_line
