#!/usr/bin/env python
"""Benchmarks for the ``repro.compile`` policy compiler (ablation A9).

Four sections; the two the acceptance gate cares about assert a
byte-identity (or proof) oracle before reporting a number:

* ``compiled_throughput`` — a warm mixed workload (more distinct
  ``(subject, action, path)`` triples than the interpreter's 4096-entry
  generational decision cache can hold) served by
  :class:`~repro.compile.engine.CompiledPolicyEngine` versus the PR 4
  :class:`~repro.scale.batch.BatchDecisionEngine`.  Oracle: every
  decision byte-identical.  Gate: ≥10x full, ≥3x ``--quick``;
* ``static_verification`` — compile + statically verify many random
  policy bases.  Oracle/gate: zero unexplained cells across every seed;
* ``recompilation`` — cold-compile latency by base size, plus the
  digest-determinism oracle (same base, same digest);
* ``xml_label_table`` — compiled per-profile label automata versus the
  Author-X interpreter over the hospital corpus.  Oracle: identical
  ``(access, deciding policy)`` per element; reports the speedup.

``--quick`` shrinks workloads for the CI perf-smoke job, which fails
closed on either oracle or gate.  Writes ``BENCH_compile.json`` to
``benchmarks/results/`` and to the repository root (canonical copy).
"""

from __future__ import annotations

import argparse
import pathlib
import platform
import random
import sys
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
TESTS = pathlib.Path(__file__).resolve().parent.parent
if str(TESTS) not in sys.path:
    sys.path.insert(0, str(TESTS))

from repro.bench.output import (  # noqa: E402
    default_output,
    write_bench_json,
)
from repro.compile import (  # noqa: E402
    CompiledPolicyEngine,
    compile_policy_base,
    compile_xml_policy_base,
    verify_compiled,
)
from repro.core.evaluator import PolicyEvaluator  # noqa: E402
from repro.core.policy import Action, PolicyBase  # noqa: E402
from repro.datagen.documents import (  # noqa: E402
    hospital_documents, hospital_schema)
from repro.datagen.population import (  # noqa: E402
    generate_population, named_cast)
from repro.scale.batch import BatchDecisionEngine  # noqa: E402
from repro.xmlsec.authorx import XmlPolicyBase  # noqa: E402

from tests.scale.workloads import HEADS, random_policies  # noqa: E402

RESULTS_OUTPUT = default_output("compile")

THROUGHPUT_GATES = {"quick": 3.0, "full": 10.0}
VERIFY_SEED_COUNTS = {"quick": 25, "full": 120}


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


# -- 1. warm mixed-workload throughput ----------------------------------

def _workload(rng: random.Random, subject_count: int,
              path_count: int) -> list[tuple]:
    """More distinct triples than the decision cache holds: the
    interpreter thrashes, the table's (path class x profile) keys
    stay tiny."""
    directory = generate_population(subject_count, seed=7)
    subjects = [directory.get(f"user{i:05d}")
                for i in range(subject_count)]
    paths = []
    for index in range(path_count):
        head = (HEADS + ("other", "r1"))[index % (len(HEADS) + 2)]
        paths.append(rng.choice((
            f"{head}/records/r{index + 1}/chart",
            f"{head}/records/r{index + 1}",
            f"{head}/summary",
            head,
        )))
    return [(subject, Action.READ if (si + pi) % 2 else Action.WRITE,
             path, None)
            for si, subject in enumerate(subjects)
            for pi, path in enumerate(paths)]


def bench_compiled_throughput(quick: bool) -> tuple[dict, bool]:
    policy_count = 24 if quick else 96
    subject_count = 90 if quick else 150
    path_count = 50 if quick else 80
    passes = 1 if quick else 2

    rng = random.Random(20260808)
    policies = random_policies(rng, policy_count)
    base = PolicyBase(policies)

    interpreter = BatchDecisionEngine(PolicyEvaluator(base))
    compiled = CompiledPolicyEngine(base=base)
    requests = _workload(rng, subject_count, path_count)

    # Warm both paths (fills the compiled table's touched cells and as
    # much of the interpreter cache as fits), then time steady state.
    warm_interpreted = interpreter.decide_batch(requests)
    warm_compiled = compiled.decide_batch(requests)
    oracle = warm_interpreted == warm_compiled

    interp_s, _ = timed(lambda: [interpreter.decide_batch(requests)
                                 for _ in range(passes)])
    compiled_s, _ = timed(lambda: [compiled.decide_batch(requests)
                                   for _ in range(passes)])

    total = passes * len(requests)
    speedup = interp_s / compiled_s
    gate = THROUGHPUT_GATES["quick" if quick else "full"]
    target_met = speedup >= gate
    stats = compiled.current().stats()
    return {
        "policies": policy_count,
        "distinct_triples": len(requests),
        "decision_cache_capacity": 4096,
        "passes": passes,
        "interpreter_s": round(interp_s, 4),
        "interpreter_decisions_per_s": round(total / interp_s),
        "compiled_s": round(compiled_s, 4),
        "compiled_decisions_per_s": round(total / compiled_s),
        "speedup": round(speedup, 1),
        "speedup_gate": gate,
        "path_classes": stats.path_classes,
        "cells_filled": stats.cells_filled,
        "oracle_decisions_byte_identical": oracle,
        "oracle_speedup_target_met": target_met,
    }, oracle and target_met


# -- 2. static equivalence verification ---------------------------------

def bench_static_verification(quick: bool) -> tuple[dict, bool]:
    seed_count = VERIFY_SEED_COUNTS["quick" if quick else "full"]
    rng = random.Random(97)
    cells = disagreements = unexplained = 0
    proved = 0
    elapsed, _ = timed(lambda: None)
    start = time.perf_counter()
    for _ in range(seed_count):
        base = PolicyBase(random_policies(rng, rng.randrange(1, 20)))
        verification = verify_compiled(compile_policy_base(base), base)
        cells += verification.cells
        disagreements += len(verification.disagreements)
        unexplained += verification.unexplained
        proved += verification.verdict == "proved"
    elapsed = time.perf_counter() - start
    ok = unexplained == 0 and proved == seed_count
    return {
        "policy_set_seeds": seed_count,
        "cells_checked": cells,
        "disagreements": disagreements,
        "explained": disagreements - unexplained,
        "unexplained": unexplained,
        "proved": proved,
        "verification_s": round(elapsed, 4),
        "cells_per_s": round(cells / elapsed),
        "oracle_zero_unexplained": ok,
    }, ok


# -- 3. recompilation latency -------------------------------------------

def bench_recompilation(quick: bool) -> tuple[dict, bool]:
    sizes = (10, 40) if quick else (10, 40, 120)
    rng = random.Random(5)
    rows = []
    deterministic = True
    for size in sizes:
        base = PolicyBase(random_policies(rng, size))
        cold_s, artifact = timed(lambda b=base: compile_policy_base(b))
        again_s, again = timed(lambda b=base: compile_policy_base(b))
        deterministic = deterministic and artifact.digest == again.digest
        rows.append({
            "policies": size,
            "compile_ms": round(cold_s * 1000, 2),
            "recompile_ms": round(again_s * 1000, 2),
            "dfa_states": artifact.stats().dfa_states,
            "digest": artifact.digest[:12],
        })
    return {
        "rows": rows,
        "oracle_digest_deterministic": deterministic,
    }, deterministic


# -- 4. compiled XML label tables ---------------------------------------

def bench_xml_label_table(quick: bool) -> tuple[dict, bool]:
    from repro.core.credentials import anyone, has_role
    from repro.xmlsec.authorx import (
        XmlPropagation, xml_deny, xml_grant)

    static_base = XmlPolicyBase([
        xml_grant(has_role("doctor"), "//record"),
        xml_deny(anyone(), "//record/ssn"),
        xml_grant(has_role("nurse"), "/hospital/record/vitals",
                  propagation=XmlPropagation.ONE_LEVEL),
        xml_grant(has_role("administrator"), "/hospital/billing",
                  propagation=XmlPropagation.LOCAL),
    ])
    schema = hospital_schema()
    documents = hospital_documents(2 if quick else 6,
                                   6 if quick else 20, seed=13)
    cast = named_cast()
    subjects = [cast.doctor, cast.nurse, cast.researcher,
                cast.administrator, cast.stranger]
    table = compile_xml_policy_base(static_base, schema,
                                    probes=subjects)

    def keys(labels):
        return sorted(
            (node_id, label.access,
             None if label.deciding_policy is None
             else label.deciding_policy.policy_id)
            for node_id, label in labels.items())

    def run_interpreter():
        return [keys(static_base.label_document(subject, doc_id,
                                                document,
                                                use_cache=False))
                for doc_id, document in documents.items()
                for subject in subjects]

    def run_compiled():
        return [keys(table.label_document(subject, document))
                for doc_id, document in documents.items()
                for subject in subjects]

    run_compiled()  # warm the automata
    interp_s, interpreted = timed(run_interpreter)
    compiled_s, compiled = timed(run_compiled)
    oracle = interpreted == compiled
    labelings = len(documents) * len(subjects)
    return {
        "documents": len(documents),
        "subjects": len(subjects),
        "labelings": labelings,
        "interpreter_s": round(interp_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(interp_s / compiled_s, 1),
        "automaton_states": table.stats().states,
        "oracle_labels_identical": oracle,
    }, oracle


SECTIONS = (
    ("compiled_throughput", bench_compiled_throughput),
    ("static_verification", bench_static_verification),
    ("recompilation", bench_recompilation),
    ("xml_label_table", bench_xml_label_table),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads for the CI smoke job")
    parser.add_argument("--output", type=pathlib.Path,
                        default=RESULTS_OUTPUT,
                        help=f"JSON report path (default {RESULTS_OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "oracles": {},
    }
    failures = []
    for name, runner in SECTIONS:
        section, ok = runner(args.quick)
        report[name] = section
        report["oracles"][name] = ok
        if not ok:
            failures.append(name)
        headline = {k: v for k, v in section.items()
                    if k in ("speedup", "speedup_gate", "unexplained")}
        print(f"{name}: {'ok' if ok else 'ORACLE/GATE FAILED'} {headline}")

    for written in write_bench_json("compile", report,
                                    output=args.output):
        print(f"wrote {written}")
    if failures:
        print(f"oracle or gate failure in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
