"""Benchmark wrapper for E7 (randomization-based PPDM)."""


def test_e07_ppdm_randomization(record):
    result = record("E7")
    noisy_rows = [row for row in result.rows if row[0] > 0]
    # Reconstruction beats the naive histogram at every noise level.
    assert all(row[3] < row[4] for row in noisy_rows)
    # Privacy (interval width and attacker error) grows with the noise.
    intervals = [row[1] for row in result.rows]
    errors = [row[2] for row in result.rows]
    assert intervals == sorted(intervals)
    assert errors == sorted(errors)
    # Even at a 76-unit privacy interval the aggregate error stays small.
    big_noise = next(row for row in result.rows if row[0] == 40.0)
    assert big_noise[3] < 0.2
