"""Benchmark wrapper for E2 (XML access control granularity)."""


def test_e02_xml_granularity(record):
    result = record("E2")
    by_granularity = {row[0]: row for row in result.rows}
    # No granularity leaks sensitive content.
    assert all(row[3] == 0 for row in result.rows)
    # Content-dependent policies over-restrict the least; whole-document
    # protection over-restricts the most.
    over = {name: row[4] for name, row in by_granularity.items()}
    assert over["content"] == min(over.values())
    assert over["document"] == max(over.values())
    assert over["document"] > over["content"] * 5
