#!/usr/bin/env python
"""Resilience benchmarks for the ``repro.faults`` layer (ablation A6).

Sweeps per-operation fault probability over the three wired client
paths and writes a machine-readable ``BENCH_faults.json``:

* ``transport``     — SOAP request/reply through :class:`ReliableChannel`
  (retry + timeout + frame checksums) vs the bare ``MessageBus.send``;
* ``uddi``          — a publish/inquiry workload through
  :class:`ResilientUddiClient` (retries + idempotency keys + staleness
  watermark) vs a single unretried pass, measured by *convergence to
  the fault-free registry digest*;
* ``dissemination`` — packet delivery through
  :class:`ResilientSubscriber` (manifest + MAC checks, retried) vs one
  unretried checked delivery.

Each section reports completion-rate and retry-overhead curves
(attempts and logical backoff ticks per successful call) as the fault
rate grows.  Two properties are asserted as oracles and gate the exit
code, exactly like ``bench_perf_hotpaths.py``:

1. fail-closed: every completed call is byte-identical to its
   fault-free run (any divergence is an oracle failure);
2. the resilience win: at a 10% per-operation fault rate the retried
   path completes >= 95% of seeds, strictly more than the unretried
   baseline.

``--quick`` shrinks the seed count for the CI smoke job.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.output import (  # noqa: E402
    default_output,
    write_bench_json,
)
from repro.core.credentials import anyone, has_role  # noqa: E402
from repro.core.errors import (  # noqa: E402
    CompletenessError, SecurityError, TransportError)
from repro.core.subjects import Role, Subject  # noqa: E402
from repro.crypto.keys import KeyStore  # noqa: E402
from repro.faults import (  # noqa: E402
    FaultClock, FaultInjector, FaultPlan, RetryPolicy)
from repro.uddi.model import BusinessEntity, BusinessService  # noqa: E402
from repro.uddi.registry import UddiRegistry  # noqa: E402
from repro.uddi.resilient import (  # noqa: E402
    FaultyRegistry, FederatedRegistry, ResilientUddiClient)
from repro.wsa.reliable import ReliableChannel  # noqa: E402
from repro.wsa.soap import SoapEnvelope  # noqa: E402
from repro.wsa.transport import MessageBus  # noqa: E402
from repro.xmldb.parser import parse  # noqa: E402
from repro.xmldb.serializer import serialize  # noqa: E402
from repro.xmlsec.authorx import (  # noqa: E402
    XmlPolicyBase, xml_deny, xml_grant)
from repro.xmlsec.dissemination import (  # noqa: E402
    Disseminator, FaultyChannel, ResilientSubscriber, open_packet)

DEFAULT_OUTPUT = default_output("faults")

FAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.3)
ACCEPT_RATE = 0.1       # the acceptance-criterion sweep point ...
ACCEPT_COMPLETION = 0.95  # ... and the completion it must reach


def payload(reply) -> str:
    return json.dumps([reply.operation, sorted(reply.parameters.items())])


def curve_row(rate, completed, total, baseline_completed, attempts,
              backoff):
    successes = max(completed, 1)
    return {
        "fault_rate": rate,
        "seeds": total,
        "completed": completed,
        "completion_rate": round(completed / total, 3),
        "baseline_completed": baseline_completed,
        "baseline_completion_rate": round(baseline_completed / total, 3),
        "mean_attempts": round(attempts / successes, 2),
        "mean_backoff_ticks": round(backoff / successes, 2),
    }


def check_curves(rows) -> tuple[bool, bool]:
    """(fail-closed held, >=95%-at-10% acceptance held)."""
    accept = True
    for row in rows:
        if row["fault_rate"] == ACCEPT_RATE:
            accept = (row["completion_rate"] >= ACCEPT_COMPLETION
                      and row["completed"] > row["baseline_completed"])
    return accept


# -- 1. SOAP transport --------------------------------------------------

def bench_transport(quick: bool) -> tuple[dict, bool]:
    seeds = 40 if quick else 120
    sites = ("transport:svc", "transport:client<-reply")

    def handler(envelope):
        return envelope.reply("echoed", dict(envelope.parameters))

    def req():
        return SoapEnvelope("ping", {"x": "42"}, sender="client",
                            receiver="svc")

    oracle_bus = MessageBus()
    oracle_bus.register("svc", handler)
    oracle = payload(oracle_bus.send(req()))

    rows = []
    fail_closed = True
    for rate in FAULT_RATES:
        completed = attempts = backoff = baseline = 0
        for seed in range(seeds):
            plan = FaultPlan.random(seed, sites, rate, horizon=60)
            bus = MessageBus(faults=FaultInjector(
                plan, FaultClock(), seed=seed))
            bus.register("svc", handler)
            channel = ReliableChannel(
                bus, RetryPolicy(max_attempts=8, jitter_seed=seed),
                timeout_ticks=50)
            try:
                reply = channel.call(req())
            except TransportError:
                continue
            fail_closed = fail_closed and payload(reply) == oracle
            completed += 1
            attempts += channel.telemetry.attempts
            backoff += channel.telemetry.backoff_ticks

            bare = MessageBus(faults=FaultInjector(
                FaultPlan.random(seed, sites, rate, horizon=60),
                FaultClock(), seed=seed))
            bare.register("svc", handler)
            try:
                baseline += payload(bare.send(req())) == oracle
            except TransportError:
                pass
        rows.append(curve_row(rate, completed, seeds, baseline,
                              attempts, backoff))
    accept = check_curves(rows)
    return {
        "curves": rows,
        "oracle_fail_closed": fail_closed,
        "oracle_95pct_at_10pct": accept,
    }, fail_closed and accept


# -- 2. federated UDDI --------------------------------------------------

def _entities():
    out = []
    for i in range(3):
        services = tuple(
            BusinessService(f"svc-{i}-{j}", f"Service {i}.{j}")
            for j in range(2))
        out.append(BusinessEntity(f"biz-{i}", f"Biz {i}", "", "",
                                  services))
    return out


def _uddi_workload(client):
    for entity in _entities():
        client.save_business(entity, publisher=f"pub-{entity.business_key}")
    client.get_business_detail("biz-0")
    client.find_service("*")


def bench_uddi(quick: bool) -> tuple[dict, bool]:
    seeds = 40 if quick else 120
    oracle_registry = UddiRegistry("oracle")
    for entity in _entities():
        oracle_registry.save_business(
            entity, publisher=f"pub-{entity.business_key}")
    oracle = oracle_registry.state_digest()

    def build(seed, rate, max_attempts):
        clock = FaultClock()
        replicas = []
        for i in range(2):
            plan = FaultPlan.random(seed * 2 + i, [f"registry:rep{i}"],
                                    rate, horizon=80)
            replicas.append(FaultyRegistry(
                UddiRegistry(f"rep{i}"),
                FaultInjector(plan, clock, seed=seed)))
        client = ResilientUddiClient(
            FederatedRegistry(replicas),
            RetryPolicy(max_attempts=max_attempts, jitter_seed=seed),
            clock)
        return client, replicas

    rows = []
    fail_closed = True
    for rate in FAULT_RATES:
        completed = attempts = backoff = baseline = 0
        for seed in range(seeds):
            client, replicas = build(seed, rate, max_attempts=10)
            try:
                _uddi_workload(client)
            except TransportError:
                continue
            fail_closed = fail_closed and all(
                r.registry.state_digest() == oracle for r in replicas)
            completed += 1
            # 5 workload calls per seed; report per-call means.
            attempts += client.total_attempts / 5
            backoff += client.total_backoff_ticks / 5

            bare_client, bare_reps = build(seed, rate, max_attempts=1)
            try:
                _uddi_workload(bare_client)
                baseline += all(r.registry.state_digest() == oracle
                                for r in bare_reps)
            except TransportError:
                pass
        rows.append(curve_row(rate, completed, seeds, baseline,
                              attempts, backoff))
    accept = check_curves(rows)
    return {
        "curves": rows,
        "oracle_converges_to_fault_free_digest": fail_closed,
        "oracle_95pct_at_10pct": accept,
    }, fail_closed and accept


# -- 3. dissemination ---------------------------------------------------

def bench_dissemination(quick: bool) -> tuple[dict, bool]:
    seeds = 40 if quick else 120
    document = parse(
        '<hospital><record id="r1"><name>Alice</name>'
        '<diagnosis>flu</diagnosis><ssn>123</ssn></record>'
        '<record id="r2"><name>Bob</name><diagnosis>cold</diagnosis>'
        '<ssn>456</ssn></record></hospital>', name="records")
    base = XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital"),
        xml_deny(anyone(), "//ssn"),
    ])
    disseminator = Disseminator(base)
    packet = disseminator.package("records", document)
    distributor = disseminator.distributor(
        {"dr": Subject("dr", roles={Role("doctor")})})
    store = KeyStore("rx-dr")
    for key in distributor.grant("dr").keys:
        store.import_key(key)
    oracle = serialize(open_packet(packet, store))

    rows = []
    fail_closed = True
    for rate in FAULT_RATES:
        completed = attempts = backoff = baseline = 0
        for seed in range(seeds):
            clock = FaultClock()
            channel = FaultyChannel(FaultInjector(
                FaultPlan.random(seed, ["dissemination:channel"], rate,
                                 horizon=40),
                clock, seed=seed))
            subscriber = ResilientSubscriber(
                store, RetryPolicy(max_attempts=8, jitter_seed=seed),
                clock)
            try:
                view = subscriber.receive(
                    lambda: channel.deliver(packet))
            except (TransportError, SecurityError, CompletenessError):
                continue
            fail_closed = fail_closed and serialize(view) == oracle
            completed += 1
            attempts += subscriber.telemetry.attempts
            backoff += subscriber.telemetry.backoff_ticks

            bare = ResilientSubscriber(
                store, RetryPolicy(max_attempts=1, jitter_seed=seed),
                FaultClock())
            bare_channel = FaultyChannel(FaultInjector(
                FaultPlan.random(seed, ["dissemination:channel"], rate,
                                 horizon=40),
                bare.clock, seed=seed))
            try:
                bare_view = bare.receive(
                    lambda: bare_channel.deliver(packet))
                baseline += serialize(bare_view) == oracle
            except (TransportError, SecurityError, CompletenessError):
                pass
        rows.append(curve_row(rate, completed, seeds, baseline,
                              attempts, backoff))
    accept = check_curves(rows)
    return {
        "curves": rows,
        "oracle_view_byte_identical": fail_closed,
        "oracle_95pct_at_10pct": accept,
    }, fail_closed and accept


SECTIONS = (
    ("transport", bench_transport),
    ("uddi", bench_uddi),
    ("dissemination", bench_dissemination),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer seeds for the CI smoke job")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "fault_rates": list(FAULT_RATES),
        },
        "oracles": {},
    }
    failures = []
    for name, runner in SECTIONS:
        section, ok = runner(args.quick)
        report[name] = section
        report["oracles"][name] = ok
        if not ok:
            failures.append(name)
        at_accept = next(
            (row for row in section["curves"]
             if row["fault_rate"] == ACCEPT_RATE), {})
        print(f"{name}: {'ok' if ok else 'ORACLE DIVERGED'} "
              f"@{ACCEPT_RATE:.0%} faults: "
              f"retried {at_accept.get('completion_rate')} vs bare "
              f"{at_accept.get('baseline_completion_rate')}, "
              f"{at_accept.get('mean_attempts')} attempts/call")

    for written in write_bench_json("faults", report,
                                    output=args.output):
        print(f"wrote {written}")
    if failures:
        print(f"oracle divergence in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
