#!/usr/bin/env python
"""Throughput benchmarks for the ``repro.scale`` layer (ablation A7).

Three sections, each asserting its equivalence oracle before reporting
a number — a speedup that changes answers is a bug, not a result:

* ``batched_authorization`` — serial ``decide()`` loop vs
  ``BatchDecisionEngine.decide_batch`` on the same distinct triples
  (distinct so neither side's decision cache helps; the win must come
  from group amortization + credential memoization).  Oracle: full
  ``Decision`` equality, request by request;
* ``sharded_stores`` — hash-sharded relational / XML / UDDI stores vs
  their monolithic counterparts holding identical content.  Oracles:
  equal rows, equal query results, byte-identical UDDI state digests;
* ``closed_loop`` — the ``RequestGateway`` pipeline swept over
  workers × shards × batch size against a serial one-at-a-time
  baseline.  Oracles: byte-identical serialized responses for every
  configuration, and *no sweep point slower than serial* — batching
  that loses to a one-at-a-time loop is a regression, asserted per
  point (``oracle_no_slowdown``).  The headline number: requests/s at
  8 workers × 8 shards vs serial (target: ≥4x full, ≥2x --quick).
  Each point also reports p50/p99 request latency from the gateway's
  shared histogram.

``--quick`` shrinks workloads for the CI perf-smoke job, which gates on
the oracles plus a ≥2x batched-pipeline speedup; full runs establish
the numbers EXPERIMENTS.md records.  Writes ``BENCH_scale.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import sys
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.output import (  # noqa: E402
    default_output,
    write_bench_json,
)
from repro.core.evaluator import Decision, PolicyEvaluator  # noqa: E402
from repro.core.policy import Action  # noqa: E402
from repro.datagen.population import generate_population  # noqa: E402
from repro.datagen.workload import (  # noqa: E402
    subject_qualification_policies)
from repro.relational.authorization import Privilege  # noqa: E402
from repro.relational.database import Database  # noqa: E402
from repro.relational.table import (  # noqa: E402
    Column, ColumnType, TableSchema)
from repro.scale import (  # noqa: E402
    BatchDecisionEngine,
    Request,
    RequestGateway,
    ShardedCollection,
    ShardedDatabase,
    ShardedPolicyEngine,
    ShardedUddiRegistry,
)
from repro.uddi.model import BusinessEntity, BusinessService  # noqa: E402
from repro.uddi.registry import UddiRegistry  # noqa: E402
from repro.xmldb.database import Collection  # noqa: E402
from repro.xmldb.parser import parse  # noqa: E402

DEFAULT_OUTPUT = default_output("scale")

#: Serial-vs-batched pipeline speedup the CI smoke job requires.
QUICK_SPEEDUP_GATE = 2.0
#: The A7 headline target at 8 workers x 8 shards (full runs).
FULL_SPEEDUP_TARGET = 4.0


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def serialize_decision(decision: Decision) -> dict:
    """The canonical wire form the byte-identity oracle compares."""
    return {
        "granted": decision.granted,
        "determining": decision.determining.policy_id
        if decision.determining is not None else None,
        "applicable": [p.policy_id for p in decision.applicable],
        "reason": decision.reason,
    }


def response_bytes(decisions: list[Decision]) -> bytes:
    return json.dumps([serialize_decision(d) for d in decisions],
                      sort_keys=True).encode()


def authorization_workload(quick: bool):
    """Distinct (subject, action, path) triples over a shared base."""
    policy_count = 120 if quick else 400
    subject_count = 60 if quick else 200
    path_count = 10 if quick else 20
    base = subject_qualification_policies(
        policy_count, basis="role", user_count=subject_count, seed=7)
    directory = generate_population(subject_count, seed=7)
    subjects = [directory.get(f"user{i:05d}")
                for i in range(subject_count)]
    rng = random.Random(7)
    paths = [f"hospital/records/r{rng.randrange(1, 500)}/name"
             for _ in range(path_count)]
    triples = [(subject, Action.READ, path)
               for subject in subjects for path in paths]
    rng.shuffle(triples)
    return base, triples


# -- 1. batched authorization ------------------------------------------

def bench_batched_authorization(quick: bool) -> tuple[dict, bool]:
    base, triples = authorization_workload(quick)

    serial_evaluator = PolicyEvaluator(base)
    serial_s, serial = timed(
        lambda: [serial_evaluator.decide(*t) for t in triples])

    batch_engine = BatchDecisionEngine(PolicyEvaluator(base))
    batch_s, batched = timed(lambda: batch_engine.decide_batch(triples))

    oracle = serial == batched
    stats = batch_engine.stats.snapshot()
    return {
        "policies": len(base),
        "requests": len(triples),
        "serial_s": round(serial_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(serial_s / batch_s, 1),
        "groups": stats["groups"],
        "subject_checks": stats["subject_checks"],
        "subject_reuses": stats["subject_reuses"],
        "oracle_batch_equals_sequential": oracle,
    }, oracle


# -- 2. sharded stores --------------------------------------------------

def _relational_equivalence(quick: bool) -> tuple[dict, bool]:
    table_count = 8 if quick else 24
    rows_per_table = 40 if quick else 120
    mono = Database("mono")
    sharded = ShardedDatabase(shard_count=4, name="sharded")
    for t in range(table_count):
        table_schema = TableSchema(f"t{t:02d}", (
            Column("id", ColumnType.INT), Column("val", ColumnType.TEXT)))
        mono.create_table(table_schema, owner="dba")
        mono.authorization.grant("dba", "reader", f"t{t:02d}",
                                 Privilege.SELECT)
        sharded.create_table(table_schema, owner="dba")
        sharded.grant("dba", "reader", f"t{t:02d}", Privilege.SELECT)
        for r in range(rows_per_table):
            mono.insert("dba", f"t{t:02d}", id=r, val=f"v{t}-{r}")
            sharded.insert("dba", f"t{t:02d}", id=r, val=f"v{t}-{r}")
    names = mono.table_names()
    select_s, sharded_rows = timed(lambda: [
        sharded.select("reader", name, order_by="id").rows
        for name in names])
    mono_rows = [mono.select("reader", name, order_by="id").rows
                 for name in names]
    ok = (sharded_rows == mono_rows
          and sharded.table_names() == names
          and sharded.total_rows() == table_count * rows_per_table)
    return {
        "tables": table_count,
        "rows": table_count * rows_per_table,
        "select_s": round(select_s, 4),
        "selects_per_s": round(len(names) / select_s),
        "shard_generations": list(sharded.generation_stamps()),
        "oracle_rows_equal": ok,
    }, ok


def _xml_equivalence(quick: bool) -> tuple[dict, bool]:
    doc_count = 60 if quick else 240
    mono = Collection("records")
    sharded = ShardedCollection("records", shard_count=4)
    for i in range(doc_count):
        # One parsed tree shared by both stores so result equality is
        # structural, not foiled by separately parsed duplicates.
        document = parse(f"<rec><id>{i}</id><name>n{i}</name>"
                         f"<dept>d{i % 7}</dept></rec>", name=f"doc{i:04d}")
        mono.insert(f"doc{i:04d}", document)
        sharded.insert(f"doc{i:04d}", document)
    query_s, sharded_hits = timed(
        lambda: sharded.query("/rec/name/text()"))
    mono_hits = mono.query("/rec/name/text()")
    structural = sharded.query("/rec/name") == mono.query("/rec/name")
    ok = (sharded_hits == mono_hits and structural
          and sharded.doc_ids() == mono.doc_ids())
    return {
        "documents": doc_count,
        "query_s": round(query_s, 4),
        "hits": len(sharded_hits),
        "spread": sharded.spread(),
        "oracle_query_equal": ok,
    }, ok


def _uddi_equivalence(quick: bool) -> tuple[dict, bool]:
    business_count = 30 if quick else 120
    mono = UddiRegistry("mono")
    sharded = ShardedUddiRegistry(shard_count=4, name="sharded")
    for i in range(business_count):
        entity = BusinessEntity(
            business_key=f"biz-{i:04d}", name=f"Corp {i}",
            description=f"vendor {i}",
            services=(BusinessService(
                service_key=f"svc-{i:04d}", name=f"service {i}",
                category="payments"),))
        mono.save_business(entity, publisher=f"pub{i % 5}")
        sharded.save_business(entity, publisher=f"pub{i % 5}")
    find_s, sharded_rows = timed(lambda: sharded.find_service("*"))
    ok = (sharded_rows == mono.find_service("*")
          and sharded.find_business("*") == mono.find_business("*")
          and sharded.state_digest() == mono.state_digest())
    return {
        "businesses": business_count,
        "find_s": round(find_s, 4),
        "spread": sharded.spread(),
        "oracle_digest_identical": ok,
    }, ok


def bench_sharded_stores(quick: bool) -> tuple[dict, bool]:
    relational, rel_ok = _relational_equivalence(quick)
    xml, xml_ok = _xml_equivalence(quick)
    uddi, uddi_ok = _uddi_equivalence(quick)
    ok = rel_ok and xml_ok and uddi_ok
    return {
        "relational": relational,
        "xml": xml,
        "uddi": uddi,
        "oracle_all_stores_equivalent": ok,
    }, ok


# -- 3. closed-loop pipeline -------------------------------------------

def _build_engine(base, shard_count: int) -> ShardedPolicyEngine:
    engine = ShardedPolicyEngine(shard_count=shard_count)
    for policy in base:
        engine.add(policy)
    return engine


def _run_gateway(engine, triples, workers: int,
                 batch_size: int) -> tuple[float, list[Decision], dict]:
    gateway = RequestGateway(engine, workers=workers,
                             queue_limit=len(triples) + 1,
                             batch_size=batch_size)
    start = time.perf_counter()
    futures = [gateway.submit(Request(s, a, p)) for s, a, p in triples]
    if workers == 0:
        gateway.process_pending()
    decisions = [future.result(timeout=60) for future in futures]
    elapsed = time.perf_counter() - start
    stats = gateway.stats.snapshot()
    gateway.close()
    return elapsed, decisions, stats


def bench_closed_loop(quick: bool) -> tuple[dict, bool]:
    base, triples = authorization_workload(quick)

    serial_evaluator = PolicyEvaluator(base)
    serial_s, serial = timed(
        lambda: [serial_evaluator.decide(*t) for t in triples])
    baseline = response_bytes(serial)
    baseline_rps = len(triples) / serial_s

    configs = ([(1, 1, 8), (2, 4, 32), (8, 8, 64), (8, 8, 256)]
               if quick else
               [(1, 1, 8), (1, 4, 32), (2, 4, 32), (4, 8, 64),
                (8, 8, 64), (8, 8, 256), (8, 8, 512)])
    sweep = []
    ok = True
    no_slowdown = True
    best_8x8 = 0.0
    for workers, shards, batch_size in configs:
        engine = _build_engine(base, shards)
        elapsed, decisions, stats = _run_gateway(
            engine, triples, workers, batch_size)
        identical = response_bytes(decisions) == baseline
        ok = ok and identical
        speedup = serial_s / elapsed
        point_ok = speedup >= 1.0
        no_slowdown = no_slowdown and point_ok
        if workers == 8 and shards == 8:
            best_8x8 = max(best_8x8, speedup)
        sweep.append({
            "workers": workers,
            "shards": shards,
            "batch": batch_size,
            "elapsed_s": round(elapsed, 4),
            "requests_per_s": round(len(triples) / elapsed),
            "speedup_vs_serial": round(speedup, 1),
            "latency_p50_s": stats["latency_p50_s"],
            "latency_p99_s": stats["latency_p99_s"],
            "oracle_byte_identical": identical,
            "oracle_no_slowdown": point_ok,
        })

    gate = QUICK_SPEEDUP_GATE if quick else FULL_SPEEDUP_TARGET
    target_met = best_8x8 >= gate
    ok = ok and target_met and no_slowdown
    return {
        "requests": len(triples),
        "serial_s": round(serial_s, 4),
        "serial_requests_per_s": round(baseline_rps),
        "sweep": sweep,
        "speedup_at_8w_8s": round(best_8x8, 1),
        "speedup_gate": gate,
        "oracle_speedup_target_met": target_met,
        "oracle_no_sweep_point_slower_than_serial": no_slowdown,
        "oracle_responses_byte_identical": ok,
    }, ok


SECTIONS = (
    ("batched_authorization", bench_batched_authorization),
    ("sharded_stores", bench_sharded_stores),
    ("closed_loop", bench_closed_loop),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads for the CI smoke job")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "oracles": {},
    }
    failures = []
    for name, runner in SECTIONS:
        section, ok = runner(args.quick)
        report[name] = section
        report["oracles"][name] = ok
        if not ok:
            failures.append(name)
        headline = {k: v for k, v in section.items()
                    if k in ("speedup", "speedup_at_8w_8s",
                             "oracle_all_stores_equivalent")}
        print(f"{name}: {'ok' if ok else 'ORACLE/GATE FAILED'} {headline}")

    for written in write_bench_json("scale", report,
                                    output=args.output):
        print(f"wrote {written}")
    if failures:
        print(f"oracle or gate failure in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
