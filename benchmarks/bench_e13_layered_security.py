"""Benchmark wrapper for E13 (layered end-to-end security)."""


def test_e13_layered_security(record):
    result = record("E13")
    by_regime = {row[0]: row for row in result.rows}
    # Only the full stack is end-to-end secure with breach rate 0.
    assert by_regime["all layers"][4] is True
    assert by_regime["all layers"][2] == "0.00"
    assert all(row[4] is False for name, row in by_regime.items()
               if name != "all layers")
    # Breach rate falls as layers are secured bottom-up.
    ladder = ["none", "network only", "up to XML", "up to RDF",
              "up to ontology", "all layers"]
    rates = [float(by_regime[name][2]) for name in ladder]
    assert rates == sorted(rates, reverse=True)
    # Skipping the bottom layer undermines everything above it.
    assert by_regime["all but network"][3] == 4
    wire = next(o for o in result.observations if "wire demo" in o)
    assert "secured message layer 0/3" in wire
