"""Benchmark wrapper for E11 (the flexible security dial)."""


def test_e11_flexible_security(record):
    result = record("E11")
    dials = [row[0] for row in result.rows]
    throughputs = [row[3] for row in result.rows]
    risks = [row[4] for row in result.rows]
    assert dials == sorted(dials)
    # Monotone frontier: more security, less throughput, less risk.
    assert throughputs == sorted(throughputs, reverse=True)
    assert risks == sorted(risks, reverse=True)
    # The endpoints the paper names: 100% security exists and costs.
    assert risks[-1] == 0.0
    assert throughputs[-1] < throughputs[0]
    # And "thirty percent security" is a real operating point.
    thirty = next(row for row in result.rows if row[0] == 30)
    assert 0 < thirty[4] < 1
