#!/usr/bin/env python
"""Benchmarks for the ``repro.snap`` lock-free read path (ablation A8).

Two sections, each asserting a byte-identity oracle before reporting a
number — a speedup that changes bytes is a bug, not a result:

* ``lockfree_reads`` — 8 worker threads serving canonical document
  reads.  Baseline: the live mutable store, each read serializing
  under a shared lock (the pre-snapshot discipline: serialization must
  not race a writer).  Treatment: epoch-published snapshots through
  :class:`~repro.snap.epoch.EpochManager.current` (one attribute read)
  with interned fragments, while a writer advances epochs between
  phases.  Oracle: every worker's read sequence is byte-identical
  across the two paths.  Gate: ≥5x full, ≥2x --quick;
* ``interned_packaging`` — repeat secure-dissemination packaging of an
  unchanged document.  Baseline: the plain
  :class:`~repro.xmlsec.dissemination.Disseminator` (relabels and
  re-serializes every time).  Treatment:
  :class:`~repro.snap.dissemination.SnapshotDisseminator` (prepared
  skeleton + payloads interned across requests and epochs; only the
  encryption is fresh).  Oracle: opened recipient views byte-identical
  packet by packet.  Gate: ≥3x full, ≥1.5x --quick.

``--quick`` shrinks workloads for the CI perf-smoke job, which fails
closed on either oracle or gate.  Writes ``BENCH_snapshots.json`` to
``benchmarks/results/`` and to the repository root (canonical copy).
"""

from __future__ import annotations

import argparse
import pathlib
import platform
import random
import sys
import threading
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.output import (  # noqa: E402
    default_output,
    write_bench_json,
)
from repro.core.credentials import anyone, has_role  # noqa: E402
from repro.core.subjects import Role, Subject  # noqa: E402
from repro.crypto.keys import KeyStore  # noqa: E402
from repro.snap.dissemination import SnapshotDisseminator  # noqa: E402
from repro.snap.xmlstore import SnapshotXmlDatabase  # noqa: E402
from repro.xmldb.database import Collection  # noqa: E402
from repro.xmldb.parser import parse  # noqa: E402
from repro.xmldb.serializer import serialize  # noqa: E402
from repro.xmlsec.authorx import (  # noqa: E402
    XmlPolicyBase, xml_deny, xml_grant)
from repro.xmlsec.dissemination import (  # noqa: E402
    Disseminator, open_packet)

RESULTS_OUTPUT = default_output("snapshots")

WORKERS = 8
READ_GATES = {"quick": 2.0, "full": 5.0}
PACKAGE_GATES = {"quick": 1.5, "full": 3.0}


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def record_xml(doc_index: int, records: int) -> str:
    parts = [f"<hospital id=\"h{doc_index}\">"]
    for r in range(records):
        parts.append(
            f"<record id=\"r{r}\"><name>Patient {doc_index}-{r}</name>"
            f"<diagnosis code=\"c{r % 9}\">diag &amp; notes {r}</diagnosis>"
            f"<ssn>{1000 + r}</ssn><ward>w{r % 5}</ward></record>")
    parts.append("</hospital>")
    return "".join(parts)


# -- 1. lock-free snapshot reads ----------------------------------------

def _run_readers(read_one, sequences) -> tuple[float, list[list[str]]]:
    """Run one reader thread per sequence; return wall time + outputs."""
    outputs: list[list[str]] = [[] for _ in sequences]
    barrier = threading.Barrier(len(sequences) + 1)

    def worker(index: int, sequence: list[str]) -> None:
        barrier.wait()
        out = outputs[index]
        for doc_id in sequence:
            out.append(read_one(doc_id))

    threads = [threading.Thread(target=worker, args=(i, seq), daemon=True)
               for i, seq in enumerate(sequences)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, outputs


def bench_lockfree_reads(quick: bool) -> tuple[dict, bool]:
    doc_count = 8 if quick else 24
    records = 12 if quick else 40
    reads_per_worker = 60 if quick else 300

    documents = {f"doc{i:03d}": record_xml(i, records)
                 for i in range(doc_count)}

    live = Collection("records")
    db = SnapshotXmlDatabase()
    db.create_collection("records")
    for doc_id, xml in documents.items():
        live.insert(doc_id, xml)
        db.insert("records", doc_id, xml)

    rng = random.Random(11)
    sequences = [[f"doc{rng.randrange(doc_count):03d}"
                  for _ in range(reads_per_worker)]
                 for _ in range(WORKERS)]

    # Baseline: the live store's discipline — serialization cannot race
    # a writer, so every read serializes under the shared store lock.
    store_lock = threading.Lock()

    def read_live(doc_id: str) -> str:
        with store_lock:
            return serialize(live.get(doc_id))

    live_s, live_outputs = _run_readers(read_live, sequences)

    # Treatment: pin nothing, lock nothing — one epoch-pointer read,
    # then interned serialization (a dictionary hit when warm).
    for doc_id in documents:
        db.current().serialize("records", doc_id)  # warm the pool

    def read_snapshot(doc_id: str) -> str:
        return db.current().serialize("records", doc_id)

    snap_s, snap_outputs = _run_readers(read_snapshot, sequences)

    # A writer advancing the epoch must not change what readers got,
    # nor slow the next storm: only the touched document recomputes.
    db.set_text("records", "doc000",
                "/hospital/record[1]/diagnosis", "updated")
    post_write_s, post_outputs = _run_readers(read_snapshot, sequences)
    expected_after = dict(documents)
    expected_after["doc000"] = serialize(
        db.current().thawed("records", "doc000"))

    oracle = live_outputs == snap_outputs and all(
        text == expected_after[doc_id]
        for sequence, output in zip(sequences, post_outputs)
        for doc_id, text in zip(sequence, output))

    total_reads = WORKERS * reads_per_worker
    speedup = live_s / snap_s
    gate = READ_GATES["quick" if quick else "full"]
    target_met = speedup >= gate
    pool = db.pool.stats()["fragments"]
    return {
        "documents": doc_count,
        "records_per_document": records,
        "workers": WORKERS,
        "reads": total_reads,
        "live_locked_s": round(live_s, 4),
        "live_reads_per_s": round(total_reads / live_s),
        "snapshot_s": round(snap_s, 4),
        "snapshot_reads_per_s": round(total_reads / snap_s),
        "post_write_storm_s": round(post_write_s, 4),
        "speedup": round(speedup, 1),
        "speedup_gate": gate,
        "fragment_cache_hit_rate": round(pool["hit_rate"], 4),
        "epochs": db.epochs.stats.snapshot(),
        "oracle_reads_byte_identical": oracle,
        "oracle_speedup_target_met": target_met,
    }, oracle and target_met


# -- 2. interned repeat packaging ---------------------------------------

DOCTOR = Subject("dr", roles={Role("doctor")})
NURSE = Subject("nn", roles={Role("nurse")})
SUBJECTS = {"dr": DOCTOR, "nn": NURSE}


def make_policy_base() -> XmlPolicyBase:
    return XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital", document="records"),
        xml_deny(anyone(), "//ssn", document="records"),
        xml_grant(has_role("nurse"), "//record/name", document="records"),
    ])


def opened_texts(disseminator, packet) -> list[str]:
    texts = []
    distributor = disseminator.distributor(SUBJECTS)
    for who in sorted(SUBJECTS):
        store = KeyStore(f"rx-{who}")
        for key in distributor.grant(who).keys:
            store.import_key(key)
        texts.append(serialize(open_packet(packet, store)))
    return texts


def bench_interned_packaging(quick: bool) -> tuple[dict, bool]:
    records = 15 if quick else 60
    repeats = 8 if quick else 30
    xml = record_xml(0, records)

    live = Disseminator(make_policy_base(), "dissemination")
    live_document = parse(xml, name="records")
    live_s, live_packets = timed(lambda: [
        live.package("records", live_document) for _ in range(repeats)])

    store = SnapshotXmlDatabase()
    store.create_collection("c")
    store.insert("c", "records", xml)
    snap = SnapshotDisseminator(store, make_policy_base(), "dissemination")
    snap_s, snap_packets = timed(lambda: [
        snap.package("c", "records") for _ in range(repeats)])

    # Oracle: what every recipient decrypts is byte-identical, packet
    # by packet, across the two paths.
    oracle = all(
        opened_texts(live, lp) == opened_texts(snap, sp)
        for lp, sp in zip(live_packets, snap_packets))

    # Epoch advance on an unrelated document must not evict the
    # prepared payloads (cross-epoch interning).
    store.insert("c", "other", "<hospital/>")
    snap.package("c", "records")
    cross_epoch_hits = snap.stats()["prep"]["hits"]

    speedup = live_s / snap_s
    gate = PACKAGE_GATES["quick" if quick else "full"]
    target_met = speedup >= gate
    return {
        "records": records,
        "repeats": repeats,
        "live_s": round(live_s, 4),
        "live_packages_per_s": round(repeats / live_s, 1),
        "interned_s": round(snap_s, 4),
        "interned_packages_per_s": round(repeats / snap_s, 1),
        "speedup": round(speedup, 1),
        "speedup_gate": gate,
        "prep_cache_hits_after_epoch_advance": cross_epoch_hits,
        "oracle_views_byte_identical": oracle,
        "oracle_speedup_target_met": target_met,
    }, oracle and target_met and cross_epoch_hits >= repeats


SECTIONS = (
    ("lockfree_reads", bench_lockfree_reads),
    ("interned_packaging", bench_interned_packaging),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads for the CI smoke job")
    parser.add_argument("--output", type=pathlib.Path,
                        default=RESULTS_OUTPUT,
                        help=f"JSON report path (default {RESULTS_OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "oracles": {},
    }
    failures = []
    for name, runner in SECTIONS:
        section, ok = runner(args.quick)
        report[name] = section
        report["oracles"][name] = ok
        if not ok:
            failures.append(name)
        headline = {k: v for k, v in section.items()
                    if k in ("speedup", "speedup_gate")}
        print(f"{name}: {'ok' if ok else 'ORACLE/GATE FAILED'} {headline}")

    for written in write_bench_json("snapshots", report,
                                    output=args.output):
        print(f"wrote {written}")
    if failures:
        print(f"oracle or gate failure in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
