"""Benchmark wrapper for E12 (secure-sum multiparty mining)."""


def test_e12_multiparty_mining(record):
    result = record("E12")
    # Exactness at every party count.
    assert all(row[2] is True for row in result.rows)
    # Same frequent itemsets regardless of partitioning.
    itemset_counts = {row[1] for row in result.rows}
    assert len(itemset_counts) == 1
    # Message cost linear in K at fixed rounds.
    rounds = {row[3] for row in result.rows}
    assert len(rounds) == 1
    messages = [row[4] for row in result.rows]
    parties = [row[0] for row in result.rows]
    assert messages[-1] / messages[0] == parties[-1] / parties[0]
