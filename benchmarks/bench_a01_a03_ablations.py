"""Benchmark wrappers for the three DESIGN.md ablations."""


def test_a01_query_index(record):
    result = record("A1")
    speedups = [row[5] for row in result.rows]
    # The index wins and its advantage grows with document size.
    assert all(s > 5 for s in speedups)
    assert speedups == sorted(speedups)
    # The cost model sent every indexable query to the index.
    assert all(row[6] == "4/3" for row in result.rows)


def test_a02_deny_aware_configs(record):
    result = record("A2")
    doctor_rows = [row for row in result.rows if row[1] == "doctor"]
    nurse_rows = [row for row in result.rows if row[1] == "nurse"]
    # Grant-only configurations leak one element per record (the SSN)
    # to the doctor; the nurse case is deny-free by most-specific-wins.
    for row in doctor_rows:
        assert row[3] == row[0]          # one ssn per record leaked
        assert "ssn" in row[4]
    for row in nurse_rows:
        assert row[3] == 0


def test_a03_policy_index(record):
    result = record("A3")
    for row in result.rows:
        indexed_us, scan_us, speedup = row[1], row[2], row[3]
        assert indexed_us < scan_us
        assert speedup > 1.0
