"""Benchmark wrapper for the A4 static-analysis scaling ablation."""


def test_a04_static_analysis(record):
    result = record("A4")
    counts = [row[0] for row in result.rows]
    per_policy = [row[2] for row in result.rows]
    assert counts == [100, 1_000, 10_000]
    # Near-linear: amortized per-policy cost must not blow up with the
    # base (allow generous constant-factor wiggle, forbid quadratic).
    assert per_policy[-1] < per_policy[0] * 20
    # The generated bases seed detectable defects at every size.
    for row in result.rows:
        conflicts, dead = row[3], row[4]
        assert conflicts > 0
        assert dead > 0
