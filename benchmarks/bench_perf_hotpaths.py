#!/usr/bin/env python
"""Hot-path benchmarks for the ``repro.perf`` layer (ablation A5).

Measures the four optimized paths against their unoptimized
counterparts and writes a machine-readable ``BENCH_perf.json``:

* ``decision_cache``  — repeated policy decisions, cold evaluator
  (``cache_decisions=False``) vs warm generational cache;
* ``single_pass_view`` — Author-X labelling, one DOM traversal per
  policy (``label_document_per_policy``) vs the simultaneous matcher
  (``label_document``), plus the fully cached re-label;
* ``incremental_merkle`` — dirty-path rehash (``MerkleTree.update_leaf``,
  ``IncrementalXmlHasher``) vs full rebuild, with hash-operation counts
  as timing-independent evidence of the O(log n) / O(depth) shape;
* ``parallel_dissemination`` — threaded vs serial packet encryption
  (reported for reference; the pure-python cipher is GIL-bound, so the
  headline here is byte-identity, not speedup).

Every section asserts its correctness oracle (cached == uncached,
single-pass labels == per-policy labels, incremental root == rebuilt
root, threaded packet == serial packet); any divergence makes the
script exit nonzero, which is what the CI perf-smoke job gates on.
``--quick`` shrinks the workloads for CI; full runs establish the
baseline numbers EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import platform
import random
import sys
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.output import (  # noqa: E402
    default_output,
    write_bench_json,
)
from repro.core.credentials import anyone, has_role  # noqa: E402
from repro.core.evaluator import PolicyEvaluator  # noqa: E402
from repro.core.policy import Action  # noqa: E402
from repro.core.subjects import Role, Subject  # noqa: E402
from repro.datagen.documents import hospital_corpus  # noqa: E402
from repro.datagen.population import generate_population  # noqa: E402
from repro.datagen.workload import (  # noqa: E402
    subject_qualification_policies, xml_policy_workload)
from repro.merkle.tree import MerkleTree  # noqa: E402
from repro.merkle.xml_merkle import (  # noqa: E402
    IncrementalXmlHasher, merkle_hash)
from repro.xmlsec.authorx import (  # noqa: E402
    XmlPolicyBase, XmlPropagation, xml_deny, xml_grant)
from repro.xmlsec.dissemination import Disseminator  # noqa: E402

DEFAULT_OUTPUT = default_output("perf")


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


# -- 1. generational decision cache ------------------------------------

def bench_decision_cache(quick: bool) -> tuple[dict, bool]:
    policy_count = 120 if quick else 400
    rounds = 15 if quick else 40
    base = subject_qualification_policies(
        policy_count, basis="role", user_count=200, seed=7)
    directory = generate_population(24, seed=7)
    subjects = [directory.get(f"user{i:05d}") for i in range(24)]
    rng = random.Random(7)
    requests = [(rng.choice(subjects),
                 rng.choice((Action.READ, Action.WRITE)),
                 f"hospital/records/r{rng.randrange(1, 500)}/name")
                for _ in range(60)]

    def run(evaluator):
        return [evaluator.decide(s, a, r)
                for _ in range(rounds) for s, a, r in requests]

    cold = PolicyEvaluator(base, cache_decisions=False)
    warm = PolicyEvaluator(base, cache_decisions=True)
    cold_s, cold_decisions = timed(lambda: run(cold))
    warm_s, warm_decisions = timed(lambda: run(warm))
    oracle = all(
        (a.granted, a.determining, a.reason)
        == (b.granted, b.determining, b.reason)
        for a, b in zip(cold_decisions, warm_decisions))
    stats = warm.cache_stats
    return {
        "policies": policy_count,
        "decisions": len(cold_decisions),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 1),
        "hit_rate": stats["hit_rate"],
        "oracle_cached_equals_uncached": oracle,
    }, oracle


# -- 2. single-pass multi-policy labelling -----------------------------

#: Hospital-DTD protection targets.  Deliberately few distinct shapes:
#: real Author-X bases protect the same DTD elements for many subject
#: groups, which is exactly what target dedup + the one-pass matcher
#: exploit.
VIEW_TARGETS = (
    "/hospital", "/hospital/record", "//record", "//record/name",
    "//record/ssn", "//record/diagnosis", "//record/treatment",
    "//record/department", "//billing", "//billing/amount",
    "//billing/insurer", "//visit", "//visit/date", "//visit/notes",
    "//record[department='cardiology']",
    "//record[diagnosis='asthma']/name",
    "//record[department='oncology']//notes",
)


def bench_single_pass_view(quick: bool) -> tuple[dict, bool]:
    policy_count = 30 if quick else 80
    records = 60 if quick else 200
    rng = random.Random(3)
    base = XmlPolicyBase()
    for _ in range(policy_count):
        expression = rng.choice((anyone(), has_role("doctor")))
        target = rng.choice(VIEW_TARGETS)
        propagation = rng.choice((XmlPropagation.CASCADE,
                                  XmlPropagation.CASCADE,
                                  XmlPropagation.LOCAL,
                                  XmlPropagation.ONE_LEVEL))
        make = xml_deny if rng.random() < 0.15 else xml_grant
        base.add(make(expression, target, propagation=propagation))
    document = hospital_corpus(records, seed=3)
    subject = Subject("dr", roles={Role("doctor")})

    per_policy_s, oracle_labels = timed(
        lambda: base.label_document_per_policy(subject, "doc", document))
    single_s, labels = timed(
        lambda: base.label_document(subject, "doc", document,
                                    use_cache=False))
    cached_s, cached = timed(
        lambda: base.label_document(subject, "doc", document))
    cached_s, cached = timed(
        lambda: base.label_document(subject, "doc", document))
    oracle = labels == oracle_labels and cached == oracle_labels
    return {
        "policies": policy_count,
        "elements": sum(1 for _ in document.iter()),
        "per_policy_s": round(per_policy_s, 4),
        "single_pass_s": round(single_s, 4),
        "cached_s": round(cached_s, 6),
        "speedup": round(per_policy_s / single_s, 1),
        "cached_speedup": round(per_policy_s / cached_s, 1),
        "oracle_single_pass_equals_per_policy": oracle,
    }, oracle


# -- 3. incremental Merkle recomputation -------------------------------

def bench_incremental_merkle(quick: bool) -> tuple[dict, bool]:
    sizes = (64, 256, 1024) if quick else (64, 256, 1024, 4096, 16384)
    updates = 16
    rng = random.Random(11)
    rows = []
    oracle = True
    for size in sizes:
        leaves = [f"leaf-{i}".encode() for i in range(size)]
        tree = MerkleTree(leaves)
        ops = []
        start = time.perf_counter()
        for round_ in range(updates):
            index = rng.randrange(size)
            leaves[index] = f"edit-{round_}-{index}".encode()
            ops.append(tree.update_leaf(index, leaves[index]))
        update_s = time.perf_counter() - start
        rebuild_s, rebuilt = timed(lambda: MerkleTree(leaves))
        oracle = oracle and tree.root == rebuilt.root
        rows.append({
            "leaves": size,
            "update_ops_max": max(ops),
            "rebuild_ops": 2 * size - 1,
            "update_s_per_edit": round(update_s / updates, 6),
            "rebuild_s": round(rebuild_s, 4),
        })
    # O(log n) shape: ops per update stay within a small multiple of
    # log2(n) while the rebuild cost is linear in n.
    logarithmic = all(row["update_ops_max"]
                      <= 2 * math.log2(row["leaves"]) + 4 for row in rows)

    document = hospital_corpus(40 if quick else 160, seed=11)
    hasher = IncrementalXmlHasher(document)
    hasher.root_hash()
    total_nodes = sum(1 for _ in document.iter())
    hasher.hash_operations = 0
    edits = 0
    for record in document.root.element_children[::3]:
        hasher.set_attribute(record, "audit", "seen")
        hasher.set_text(record.element_children[0], "redacted")
        hasher.root_hash()
        edits += 2
    xml_oracle = hasher.verify_against_rebuild()
    xml_row = {
        "elements": total_nodes,
        "edits": edits,
        "hash_ops_per_edit": round(hasher.hash_operations / edits, 1),
        "rebuild_ops": total_nodes,
        "oracle_root_equals_rebuild": xml_oracle,
    }
    ok = oracle and xml_oracle and logarithmic
    return {
        "tree": rows,
        "logarithmic_update_cost": logarithmic,
        "oracle_root_equals_rebuild": oracle,
        "xml": xml_row,
    }, ok


# -- 4. parallel dissemination packaging -------------------------------

def bench_parallel_dissemination(quick: bool) -> tuple[dict, bool]:
    base = xml_policy_workload(16 if quick else 32, seed=5,
                               dead_fraction=0.0)
    document = hospital_corpus(40 if quick else 150, seed=5)
    workers = 4
    serial_s, serial = timed(
        lambda: Disseminator(base).package("doc", document))
    parallel_s, threaded = timed(
        lambda: Disseminator(base).package("doc", document,
                                           workers=workers))
    oracle = (serial.skeleton == threaded.skeleton
              and len(serial.blocks) == len(threaded.blocks)
              and all((a.key_id, a.nonce, a.body, a.tag)
                      == (b.key_id, b.nonce, b.body, b.tag)
                      for a, b in zip(serial.blocks, threaded.blocks)))
    return {
        "blocks": len(serial.blocks),
        "workers": workers,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2),
        "oracle_packet_byte_identical": oracle,
    }, oracle


SECTIONS = (
    ("decision_cache", bench_decision_cache),
    ("single_pass_view", bench_single_pass_view),
    ("incremental_merkle", bench_incremental_merkle),
    ("parallel_dissemination", bench_parallel_dissemination),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads for the CI smoke job")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "oracles": {},
    }
    failures = []
    for name, runner in SECTIONS:
        section, ok = runner(args.quick)
        report[name] = section
        report["oracles"][name] = ok
        if not ok:
            failures.append(name)
        headline = {k: v for k, v in section.items()
                    if k in ("speedup", "cached_speedup",
                             "logarithmic_update_cost")}
        print(f"{name}: {'ok' if ok else 'ORACLE DIVERGED'} {headline}")

    for written in write_bench_json("perf", report,
                                    output=args.output):
        print(f"wrote {written}")
    if failures:
        print(f"oracle divergence in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
