"""Benchmark wrapper for E3 (dissemination key scaling)."""


def test_e03_dissemination_keys(record):
    result = record("E3")
    first, last = result.rows[0], result.rows[-1]
    # Author-X key count does not grow with subscribers.
    assert first[1] == last[1]
    # Naive key count grows with subscribers.
    assert last[2] > first[2] * 5
    # At scale, the single packet costs less to prepare than the
    # per-subscriber views, in bytes and in time.
    assert last[3] < last[4]
    assert last[5] < last[6]
