"""Benchmark wrapper for E14 (web transaction models)."""


def test_e14_web_transactions(record):
    result = record("E14")
    for row in result.rows:
        lock_rejected, open_rejected = row[1], row[2]
        lock_revenue, open_revenue = row[7], row[8]
        # Open bidding never rejects a bid on an open item; locking
        # rejects everything after the first.
        assert open_rejected == 0
        assert lock_rejected > 0
        # Open bidding extracts at least as much revenue.
        assert open_revenue >= lock_revenue
    # The revenue gap widens with contention.
    gaps = [row[8] - row[7] for row in result.rows]
    assert gaps == sorted(gaps)
