"""Shared helpers for the benchmark suite.

Each ``bench_eXX`` module runs one registered experiment through
pytest-benchmark, saves its rendered table under ``benchmarks/results/``
(the rows EXPERIMENTS.md records) and asserts the experiment's headline
shape.
"""

from __future__ import annotations

import pathlib

import pytest

import repro.bench.experiments  # noqa: F401  (registers all experiments)
from repro.bench.harness import ExperimentResult, get_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_record(benchmark, experiment_id: str) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and persist its table."""
    experiment = get_experiment(experiment_id)
    result = benchmark.pedantic(experiment.runner, rounds=1,
                                iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    output = RESULTS_DIR / f"{experiment_id}.txt"
    output.write_text(f"claim: {experiment.claim}\n\n"
                      + result.render() + "\n", encoding="utf-8")
    return result


@pytest.fixture
def record(benchmark):
    def runner(experiment_id: str) -> ExperimentResult:
        return run_and_record(benchmark, experiment_id)

    return runner
