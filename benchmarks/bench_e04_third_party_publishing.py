"""Benchmark wrapper for E4 (third-party publishing verification)."""


def test_e04_third_party_publishing(record):
    result = record("E4")
    # Every attack detected.
    detection = next(o for o in result.observations
                     if o.startswith("attack detection"))
    assert "tamper 3/3" in detection
    assert "omit 3/3" in detection
    assert "swap 3/3" in detection
    # Proof size (filler hashes) grows with corpus size for partial
    # views (nurse sees a small slice of a growing document).
    nurse_rows = [row for row in result.rows if row[1] == "nurse"]
    assert nurse_rows[-1][2] > nurse_rows[0][2]
    # Verification stays in the milliseconds range.
    assert all(row[3] < 1000 for row in result.rows)
