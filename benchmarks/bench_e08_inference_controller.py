"""Benchmark wrapper for E8 (the inference controller)."""


def test_e08_inference_controller(record):
    result = record("E8")
    for row in result.rows:
        raw, stateless, tracked, refusals = (row[1], row[2], row[3],
                                             row[4])
        # The two-step attack links every target without history
        # tracking...
        assert raw == 40
        assert stateless == 40
        # ...and none with it; every second step refused.
        assert tracked == 0
        assert refusals == 40
    # Overhead stays in the sub-10ms-per-query range.
    assert all(row[6] < 10 for row in result.rows)
