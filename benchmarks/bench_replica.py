#!/usr/bin/env python
"""Replication benchmarks for ``repro.replica`` (A11).

Three sections, each asserting its oracle before reporting a number:

* ``anti_entropy`` — a 10k-entry store forked into a replica, 1% of
  buckets diverged, then repaired two ways: Merkle anti-entropy
  (descend the tree, ship only divergent buckets) versus a full
  resync (ship everything).  Oracle: both paths land on the same root,
  byte-identical to the source.  Gate: anti-entropy is at least
  ``REPAIR_ADVANTAGE_GATE`` x cheaper than the full resync in *both*
  bytes shipped and wall time;
* ``read_scaling`` — one ReplicaRouter shard swept over replica
  counts; a fixed read workload fans over the read replicas
  round-robin.  Oracle: every replica count returns the same values
  and load spreads (no replica serves more than 2x its fair share);
  reported: reads per second per configuration;
* ``chaos_convergence`` — the seeded chaos battery from
  :mod:`repro.replica.chaos` (kill-primary-mid-publish, partition +
  delay, stale-read injection overlays).  Oracle: every seed converges
  to the byte-identical fault-free digest with zero unrecovered
  writes; reported: repairs, failovers, and trace sizes.

``--quick`` shrinks workloads for the CI perf-smoke job (fewer chaos
seeds, smaller store — the byte gate still holds because the ratio is
structural, not constant-factor).  Writes ``BENCH_replica.json``.
"""

from __future__ import annotations

import argparse
import pathlib
import platform
import sys
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.output import (  # noqa: E402
    default_output,
    write_bench_json,
)
from repro.replica import (  # noqa: E402
    BucketedMerkleStore,
    ReplicaRouter,
    antientropy_repair,
    full_resync,
    oracle_digest,
    run_chaos,
)

DEFAULT_OUTPUT = default_output("replica")

#: Anti-entropy must beat a full resync by this factor in bytes
#: shipped AND wall time at 1% divergence (the ISSUE's acceptance
#: gate): shipping the tree walk has to be an order of magnitude
#: cheaper than shipping the store.
REPAIR_ADVANTAGE_GATE = 10.0

#: The full battery's seed count; --quick runs a slice of it.
CHAOS_SEEDS = 60
QUICK_CHAOS_SEEDS = 12


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _forked_stores(entries: int, bucket_count: int):
    """A source store and a replica forked at the same state."""
    data = {f"key-{i:06d}": f"value-{i:06d}-" + "x" * 96
            for i in range(entries)}
    source = BucketedMerkleStore(bucket_count)
    source.load(data)
    replica = BucketedMerkleStore(bucket_count)
    replica.load(data)
    return source, replica


def bench_anti_entropy(quick: bool) -> tuple[dict, bool]:
    """Merkle repair vs full resync at 1% bucket divergence."""
    entries = 2_000 if quick else 10_000
    bucket_count = 1_024 if quick else 4_096
    divergent_target = max(1, bucket_count // 100)  # 1% of buckets

    source, repaired = _forked_stores(entries, bucket_count)
    _, resynced = _forked_stores(entries, bucket_count)

    # Diverge ~1% of buckets: overwrite one key per target bucket.
    touched: set[int] = set()
    index = 0
    while len(touched) < divergent_target:
        key = f"key-{index:06d}"
        bucket = source.bucket_of(key)
        if bucket not in touched:
            touched.add(bucket)
            source.put(key, f"diverged-{index}-" + "y" * 96)
        index += 1

    repair_report, repair_s = _timed(
        lambda: antientropy_repair(source, repaired))
    resync_report, resync_s = _timed(
        lambda: full_resync(source, resynced))

    ok = (repaired.root == source.root
          and resynced.root == source.root
          and dict(repaired.items()) == dict(source.items()))
    byte_ratio = resync_report.bytes_shipped / repair_report.bytes_shipped
    time_ratio = resync_s / repair_s if repair_s > 0 else float("inf")
    gate_met = (byte_ratio >= REPAIR_ADVANTAGE_GATE
                and time_ratio >= REPAIR_ADVANTAGE_GATE)
    ok = ok and gate_met
    return {
        "entries": entries,
        "bucket_count": bucket_count,
        "divergent_buckets": len(touched),
        "repair": repair_report.snapshot(),
        "repair_s": round(repair_s, 6),
        "resync": resync_report.snapshot(),
        "resync_s": round(resync_s, 6),
        "byte_advantage": round(byte_ratio, 2),
        "time_advantage": round(time_ratio, 2),
        "advantage_gate": REPAIR_ADVANTAGE_GATE,
        "advantage_gate_met": gate_met,
    }, ok


def bench_read_scaling(quick: bool) -> tuple[dict, bool]:
    """Read throughput and spread as the replica count grows."""
    keys = 200 if quick else 1_000
    reads = 2_000 if quick else 10_000
    sweep = (1, 2, 3, 5)
    points = []
    ok = True
    for replica_count in sweep:
        router = ReplicaRouter(shard_count=1,
                               replica_count=replica_count,
                               bucket_count=256)
        for i in range(keys):
            router.put(f"key-{i}", f"value-{i}")
        session = router.session()

        def workload():
            for i in range(reads):
                value = router.get(f"key-{i % keys}", session=session)
                if value != f"value-{i % keys}":
                    return False
            return True

        correct, elapsed = _timed(workload)
        ok = ok and correct
        served = {site: count
                  for site, count in router.reads_by_replica().items()
                  if count > 0}
        # Spread oracle: no serving replica carries > 2x its fair
        # share (single-replica groups trivially pass).
        fair = reads / max(1, len(served))
        spread_ok = all(count <= 2 * fair for count in served.values())
        ok = ok and spread_ok
        points.append({
            "replica_count": replica_count,
            "reads_per_s": round(reads / elapsed),
            "serving_replicas": len(served),
            "spread_ok": spread_ok,
        })
    return {"reads": reads, "sweep": points}, ok


def bench_chaos_convergence(quick: bool) -> tuple[dict, bool]:
    """The seeded chaos battery: every seed hits the oracle digest."""
    seeds = range(QUICK_CHAOS_SEEDS if quick else CHAOS_SEEDS)
    oracle = oracle_digest()
    converged = 0
    repairs = 0
    failovers = 0
    unacked = 0
    diverged_seeds = []
    for seed in seeds:
        result = run_chaos(seed)
        if result.matches_oracle and result.digest == oracle:
            converged += 1
        else:
            diverged_seeds.append(seed)
        repairs += result.repairs
        failovers += result.failovers
        unacked += result.unacked_writes
    ok = not diverged_seeds
    return {
        "seeds": len(seeds),
        "converged": converged,
        "diverged_seeds": diverged_seeds,
        "total_repairs": repairs,
        "total_failovers": failovers,
        "total_unacked_writes": unacked,
    }, ok


SECTIONS = (
    ("anti_entropy", bench_anti_entropy),
    ("read_scaling", bench_read_scaling),
    ("chaos_convergence", bench_chaos_convergence),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads for the CI smoke job")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "oracles": {},
    }
    failures = []
    for name, runner in SECTIONS:
        section, ok = runner(args.quick)
        report[name] = section
        report["oracles"][name] = ok
        if not ok:
            failures.append(name)
        headline = {k: v for k, v in section.items()
                    if k in ("byte_advantage", "time_advantage",
                             "converged", "seeds")}
        print(f"{name}: {'ok' if ok else 'ORACLE/GATE FAILED'} {headline}")

    for written in write_bench_json("replica", report,
                                    output=args.output):
        print(f"wrote {written}")
    if failures:
        print(f"oracle or gate failure in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
