"""Benchmark wrapper for E1 (subject qualification at web scale)."""


def test_e01_subject_qualification(record):
    result = record("E1")
    by_key = {(row[0], row[1]): row for row in result.rows}
    # Identity-based policy counts grow with the population...
    assert by_key[(2000, "identity")][2] > by_key[(100, "identity")][2] * 5
    # ...role/credential-based stay flat.
    assert by_key[(2000, "role")][2] == by_key[(100, "role")][2]
    assert by_key[(2000, "credential")][2] == \
        by_key[(100, "credential")][2]
    # Decision latency for the identity basis grows too.
    assert by_key[(2000, "identity")][3] > by_key[(2000, "role")][3]
