"""Privacy-preserving analytics over medical data (§3.3).

Three instruments from the paper, on one synthetic patient database:

1. the inference controller blocks a quasi-identifier linkage attack
   that per-query checks miss;
2. Agrawal–Srikant randomization lets an analyst recover the age
   distribution without seeing any true age;
3. secure-sum multiparty mining finds association rules across four
   hospitals without pooling their records.

Run:  python examples/privacy_mining.py
"""

import numpy as np

from repro.core.errors import InferenceViolation
from repro.datagen.tabular import load_patients, market_baskets, numeric_column
from repro.privacy import (
    InferenceController,
    NoiseModel,
    PrivacyConstraintSet,
    PrivacyController,
    PrivacyLevel,
    centralized_apriori,
    distributed_apriori,
    histogram_distance,
    partition_transactions,
    privacy_interval,
    randomize,
    reconstruct_distribution,
    true_distribution,
)
from repro.relational import Database, Privilege


def inference_demo() -> None:
    print("=== 1. the inference controller ===")
    database = Database()
    load_patients(database, 150, seed=201)
    database.authorization.grant("dba", "analyst", "patients",
                                 Privilege.SELECT)
    constraints = PrivacyConstraintSet()
    constraints.protect_together(
        "patients", ["zip", "age", "diagnosis"], PrivacyLevel.PRIVATE,
        name="quasi-identifier-linkage")
    controller = InferenceController(
        PrivacyController(database, constraints))

    result = controller.select("analyst", "patients",
                               ["id", "zip", "age"])
    print(f"step 1 (zip+age for {len(result)} rows): answered")
    try:
        controller.select("analyst", "patients", ["id", "diagnosis"])
        print("step 2 (diagnosis): answered — linkage completed!")
    except InferenceViolation as error:
        print(f"step 2 (diagnosis): REFUSED — {error}")


def randomization_demo() -> None:
    print("\n=== 2. randomization + reconstruction ===")
    ages = numeric_column(4000, seed=202)
    noise = NoiseModel("uniform", 25.0)
    released = randomize(ages, noise, seed=203)
    print(f"each patient adds U(-25, 25) noise before release; 95% "
          f"privacy interval = {privacy_interval(noise):.0f} years")
    bins = np.linspace(15, 100, 18)
    estimated = reconstruct_distribution(released, noise, bins)
    actual = true_distribution(ages, bins)
    naive = true_distribution(released, bins)
    print(f"distribution error: reconstructed "
          f"{histogram_distance(estimated, actual):.3f} vs naive "
          f"{histogram_distance(naive, actual):.3f} (total variation)")
    bars = (estimated / max(estimated.max(), 1e-9) * 30).astype(int)
    centers = (bins[:-1] + bins[1:]) / 2
    print("reconstructed age distribution:")
    for center, bar in zip(centers, bars):
        print(f"  {center:5.1f} | {'#' * bar}")


def multiparty_demo() -> None:
    print("\n=== 3. multiparty mining without pooling ===")
    baskets = market_baskets(800, seed=204)
    hospitals = partition_transactions(baskets, 4, seed=205)
    sizes = [len(h.transactions) for h in hospitals]
    print(f"four hospitals hold {sizes} transactions each")
    outcome = distributed_apriori(hospitals, 0.15, seed=206)
    central = centralized_apriori(hospitals, 0.15)
    print(f"secure-sum mining: {len(outcome.frequent)} frequent "
          f"itemsets in {outcome.secure_sum_rounds} rounds / "
          f"{outcome.messages} messages")
    print(f"identical to centralized mining: "
          f"{outcome.frequent == central}")
    top = sorted(outcome.frequent.items(), key=lambda kv: -kv[1])[:3]
    for itemset, support in top:
        print(f"  {{{', '.join(sorted(itemset))}}} "
              f"support={support:.2f}")


if __name__ == "__main__":
    inference_demo()
    randomization_demo()
    multiparty_demo()
