"""Quickstart: the policy framework and XML views in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Action,
    PolicyBase,
    PolicyEvaluator,
    Role,
    Subject,
    anyone,
    deny,
    grant,
    has_role,
)
from repro.xmldb import parse, pretty
from repro.xmlsec import XmlPolicyBase, compute_view, xml_deny, xml_grant


def main() -> None:
    # 1. Subjects are qualified by roles/credentials, not just identity.
    doctor = Subject("dr-grey", roles={Role("doctor")})
    visitor = Subject("web-visitor")

    # 2. Path-level access control with explicit conflict resolution.
    evaluator = PolicyEvaluator(PolicyBase([
        grant(has_role("doctor"), Action.READ, "hospital/records/**"),
        deny(anyone(), Action.READ, "hospital/records/*/ssn"),
    ]))
    print("doctor reads a diagnosis:",
          evaluator.check(doctor, Action.READ,
                          "hospital/records/r1/diagnosis"))
    print("doctor reads an SSN:    ",
          evaluator.check(doctor, Action.READ,
                          "hospital/records/r1/ssn"))
    print("visitor reads anything: ",
          evaluator.check(visitor, Action.READ,
                          "hospital/records/r1/diagnosis"))

    # 3. The same ideas inside documents: Author-X policies over XML.
    document = parse("""
        <hospital>
          <record id="r1">
            <name>Alice</name><diagnosis>flu</diagnosis><ssn>123</ssn>
          </record>
          <record id="r2">
            <name>Bob</name><diagnosis>cold</diagnosis><ssn>456</ssn>
          </record>
        </hospital>""", name="records")
    xml_policies = XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital"),
        xml_deny(anyone(), "//ssn"),
        xml_grant(has_role("nurse"), "//record/name"),
    ])

    for subject in (doctor, Subject("nurse-joy", roles={Role("nurse")}),
                    visitor):
        view, stats = compute_view(xml_policies, subject, "records",
                                   document)
        print(f"\n--- view for {subject.identity.name} "
              f"({stats.read_elements} readable elements) ---")
        print(pretty(view) if view is not None else "(nothing)")


if __name__ == "__main__":
    main()
