"""A web-service marketplace on a third-party discovery agency (§2.2/§4).

Providers publish Merkle-signed entries to a UDDI registry run by a
discovery agency; a requestor browses, drills down with client-side
verification, checks the provider's P3P policy against her preferences,
and finally invokes the service over the signed/encrypted message bus.
Then the agency is compromised — and the requestor notices.

Run:  python examples/service_marketplace.py
"""

from repro.core import Subject, anyone, grant
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase
from repro.core.errors import AuthenticationError
from repro.p3p import (
    DataCategory,
    P3PPolicy,
    Purpose,
    Recipient,
    Retention,
    match,
    statement,
    strictness_profile,
)
from repro.uddi import ThirdPartyDeployment, make_business, make_service
from repro.wsa import (
    DiscoveryAgencyActor,
    MessageBus,
    ServiceProvider,
    ServiceRequestor,
    describe,
)

ALICE = Subject("alice")


def main() -> None:
    evaluator = PolicyEvaluator(PolicyBase([
        grant(anyone(), Action.READ, "uddi/**"),
        grant(anyone(), Action.WRITE, "uddi/**"),
    ]))
    deployment = ThirdPartyDeployment(evaluator)
    agency = DiscoveryAgencyActor("discovery", deployment)

    # Provider publishes a signed entry.
    weatherco_key = deployment.register_provider("weatherco",
                                                 key_seed=111)
    entity = make_business("WeatherCo", "forecasts as a service")
    entity = entity.with_service(make_service(
        "city forecast", category="weather", access_point="weather-ws"))
    deployment.publish("weatherco", entity)
    print("WeatherCo published a Merkle-signed registry entry")

    # Requestor discovers and verifies the answer locally.
    bus = MessageBus()
    requestor = ServiceRequestor("alice", bus, key_seed=112)
    rows = requestor.discover(agency, ALICE, category="weather")
    print(f"browse found: {[r.service_name for r in rows]}")
    answer = requestor.verified_service_detail(
        agency, ALICE, rows[0].service_key, "weatherco")
    endpoint = next(n.text for n in answer.view.iter()
                    if n.tag == "accessPoint")
    print(f"drill-down verified against WeatherCo's summary signature; "
          f"endpoint = {endpoint}")

    # P3P gate before invoking.
    weather_policy = P3PPolicy("weatherco", (statement(
        [DataCategory.LOCATION], [Purpose.CURRENT], [Recipient.OURS],
        Retention.NO_RETENTION),))
    preferences = strictness_profile(3, "alice-minimal")
    verdict = match(weather_policy, preferences)
    print(f"P3P check against {preferences.name!r}: "
          f"acceptable={verdict.acceptable}")

    # Secure invocation.
    provider = ServiceProvider(
        "weather-ws", describe("Weather",
                               forecast=(("city",), ("temp",))),
        bus, key_seed=113, require_signatures=True)
    provider.implement("forecast",
                       lambda s, p: {"temp": f"21C in {p['city']}"})
    provider.trust_requestor("alice", requestor.public_key)
    requestor.trust_provider("weather-ws", provider.public_key)
    output = requestor.invoke(endpoint, "forecast", {"city": "Como"},
                              sign_request=True, encrypt=["city"])
    print(f"invocation (signed + encrypted city): {output['temp']}")

    # The agency goes rogue.
    deployment.compromise()
    print("\ndiscovery agency compromised; it now rewrites answers...")
    try:
        requestor.verified_service_detail(
            agency, ALICE, rows[0].service_key, "weatherco")
        print("  forged answer ACCEPTED — this must not happen")
    except AuthenticationError as error:
        print(f"  forged answer rejected: {error}")


if __name__ == "__main__":
    main()
