"""A deliberately flawed deployment for the static analyzer to catch.

Run ``PYTHONPATH=src python -m repro.analysis examples/analysis_fixture.py``
to see every analysis domain report a seeded defect: an XML grant/deny
conflict, a dead policy, a shadowed grant, a dangling grant, a
grant-option cycle, a privilege-escalation chain, an inference channel,
a redundant association constraint, a reification leak and a partially
classified RDF container.  The module only *builds* the artifacts —
detection happens without executing a single query.
"""

from repro.core.credentials import anyone, has_role
from repro.core.mls import Label, Level
from repro.datagen.documents import hospital_schema
from repro.datagen.population import named_cast
from repro.privacy.constraints import PrivacyConstraintSet, PrivacyLevel
from repro.rdfdb.containers import create_container
from repro.rdfdb.model import IRI, Literal, Triple
from repro.rdfdb.reification import reify
from repro.rdfdb.security import SecureRdfStore
from repro.relational.authorization import AuthorizationManager, Privilege
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant

# -- XML policies over the hospital DTD ---------------------------------

SCHEMA = hospital_schema()
_cast = named_cast()
SUBJECTS = [_cast.doctor, _cast.nurse, _cast.researcher,
            _cast.administrator, _cast.stranger]

POLICIES = XmlPolicyBase()
# Conflict: doctors are granted the SSN subtree that a blanket denial
# covers for everyone.
POLICIES.add(xml_grant(has_role("doctor"), "//record/ssn"))
POLICIES.add(xml_deny(anyone(), "//record/ssn"))
# Dead: the hospital DTD declares no <prescription> element.
POLICIES.add(xml_grant(has_role("nurse"), "//prescription"))
# Shadowed: the nurse grant on billing amounts loses everywhere to the
# blanket denial at the same attachment point.
POLICIES.add(xml_grant(has_role("nurse"), "//billing/amount"))
POLICIES.add(xml_deny(anyone(), "//billing/amount"))
# Healthy control policy: should produce no findings.
POLICIES.add(xml_grant(has_role("doctor"), "/hospital/record"))

# -- relational grant graph ------------------------------------------------

GRANTS = AuthorizationManager()
GRANTS.set_owner("patients", "dba")
GRANTS.grant("dba", "alice", "patients", Privilege.SELECT,
             with_grant_option=True)
GRANTS.grant("alice", "bob", "patients", Privilege.SELECT,
             with_grant_option=True)
# Escalation: carol reaches GRANT authority two hops past the owner.
GRANTS.grant("bob", "carol", "patients", Privilege.SELECT,
             with_grant_option=True)
# Cycle: alice and bob mutually support each other's options.
GRANTS.grant("bob", "alice", "patients", Privilege.SELECT,
             with_grant_option=True)
# Dangling: a bulk-imported edge with no owner-rooted support.
GRANTS.import_grant("mallory", "eve", "patients", Privilege.UPDATE)

# -- privacy constraints ------------------------------------------------------

CONSTRAINTS = PrivacyConstraintSet()
# Channel: name and diagnosis are public one at a time, private jointly.
CONSTRAINTS.protect_together(
    "patients", ["name", "diagnosis"], PrivacyLevel.PRIVATE,
    name="identity-condition")
# Redundant: ssn alone is already private, so ssn+insurer can never be
# assembled from permitted releases.
CONSTRAINTS.protect("patients", "ssn", PrivacyLevel.PRIVATE)
CONSTRAINTS.protect_together(
    "patients", ["ssn", "insurer"], PrivacyLevel.PRIVATE,
    name="billing-identity")

# -- RDF classification -------------------------------------------------------

RDF_STORE = SecureRdfStore()
_ex = "http://example.org/"
_statement = Triple(IRI(_ex + "patient1"), IRI(_ex + "diagnosis"),
                    Literal("arrhythmia"))
RDF_STORE.add(_statement)
reify(RDF_STORE.store, _statement)
# Leak: the statement goes SECRET while its quadruples stay PUBLIC.
RDF_STORE.classify(_statement, Label(Level.SECRET),
                   protect_reifications=False)
# Partial container classification: only member _2 is raised.
_container = create_container(
    RDF_STORE.store, "Bag",
    [Literal("entry-1"), Literal("entry-2"), Literal("entry-3")])
for _triple in RDF_STORE.store.match(_container, None, None):
    if _triple.predicate.local_name == "_2":
        RDF_STORE.classify(_triple, Label(Level.CONFIDENTIAL),
                           protect_reifications=False)
