"""The secure semantic web of §5, layer by layer.

Walks the paper's closing vision: the layer stack and its end-to-end
argument, semantic RDF security with the "once the war is over"
declassification, labelled ontologies driving secure information
integration, and the flexible security dial reacting to an incident.

Run:  python examples/semantic_web_stack.py
"""

from repro.core.errors import AuthenticationError
from repro.core.mls import Label, Level
from repro.crypto.rsa import generate_keypair
from repro.rdfdb import RDFS, Namespace, SecureRdfStore, triple
from repro.semweb import (
    ATTACK_CORPUS,
    FlexiblePolicy,
    LayerName,
    LayerStack,
    Ontology,
    ProofEngine,
    Rule,
    SecureIntegrator,
    SituationalPolicy,
    SourceBinding,
    TrustPolicy,
    atom,
    check_proof,
    sign_fact,
)

EX = Namespace("http://gov.example/")
SECRET = Label(Level.SECRET)
PUBLIC_READER = Label(Level.UNCLASSIFIED)


def layers_demo() -> None:
    print("=== the layer stack (§5) ===")
    stack = LayerStack.none_secured()
    print(f"{'securing':<18} breach-rate  end-to-end")
    print(f"{'(nothing)':<18} "
          f"{stack.breach_rate(ATTACK_CORPUS):10.2f}  "
          f"{stack.end_to_end_secure()}")
    for layer in LayerName:
        stack.secure(layer)
        print(f"+ {layer.value:<16} "
              f"{stack.breach_rate(ATTACK_CORPUS):10.2f}  "
              f"{stack.end_to_end_secure()}")


def rdf_demo() -> None:
    print("\n=== semantic RDF security ===")
    store = SecureRdfStore()
    report = triple(EX.report17, EX.describes, EX.troopMovements)
    store.add(report)
    store.add_context_rule(report, "wartime", SECRET)
    store.add(triple(EX.describes, RDFS.domain, EX.ClassifiedDoc))

    def about_report(clearance):
        return store.query(clearance, subject=EX.report17, infer=True,
                           semantic=True)

    store.set_context("wartime", True)
    print(f"during the war, a public reader sees "
          f"{len(about_report(PUBLIC_READER))} triples about report17")
    store.set_context("wartime", False)
    after = about_report(PUBLIC_READER)
    print(f"'once the war is over' it is declassified: {len(after)} "
          f"triples visible, including the derived ClassifiedDoc "
          f"typing")


def integration_demo() -> None:
    print("\n=== ontology-driven secure integration ===")
    ontology = Ontology("shared")
    ontology.add_term("intel")
    ontology.add_term("field-report", parents=["intel"])
    hospital = SecureRdfStore()
    hospital.add(triple(EX.unitA, EX.reportsOn, "border-crossing"))
    allied = SecureRdfStore()
    allied.add(triple(EX.unitB, EX.observes, "convoy"))
    integrator = SecureIntegrator(ontology)
    integrator.add_source(SourceBinding(
        "domestic", hospital, {"field-report": EX.reportsOn}))
    integrator.add_source(SourceBinding(
        "allied", allied, {"field-report": EX.observes},
        trust=SECRET))
    for clearance, label in ((PUBLIC_READER, "uncleared analyst"),
                             (SECRET, "cleared analyst")):
        results = integrator.query_term(clearance, "intel")
        print(f"{label}: {len(results)} integrated facts "
              f"(sources: {sorted({r.source for r in results})})")


def flexible_demo() -> None:
    print("\n=== the flexible security dial ===")
    situational = SituationalPolicy(FlexiblePolicy())
    for situation in ("relaxed", "under-attack", "normal"):
        point = situational.escalate_to(situation)
        print(f"{situation:>12}: dial={situational.dial():3d} "
              f"throughput={point.throughput:.2f} "
              f"residual-risk={point.residual_risk:.2f} "
              f"active={', '.join(point.active_measures[-2:]) or '-'}")


def trust_demo() -> None:
    print("\n=== logic, proof and trust (the top layer) ===")
    board = generate_keypair(bits=256, seed=99)
    rules = [Rule(atom("canRead", "?u", "?d"),
                  (atom("doctor", "?u"), atom("record", "?d")),
                  name="doctors-read-records")]
    engine = ProofEngine(rules, [
        sign_fact(atom("doctor", "grey"), "board", board.private),
        sign_fact(atom("record", "r17"), "board", board.private),
    ])
    trust = TrustPolicy()
    trust.trust("board", board.public, ["doctor", "record"])
    proof = engine.prove(atom("canRead", "grey", "r17"))
    check_proof(proof, trust, rules)
    print(f"proved {proof.conclusion} with a {proof.size()}-node proof; "
          f"checker accepted it (leaves signed by the medical board)")
    bogus = Rule(atom("canRead", "?u", "?d"), (), name="everything-goes")
    forged = ProofEngine([bogus], []).prove(
        atom("canRead", "mallory", "r17"))
    try:
        check_proof(forged, trust, rules)
        print("forged proof ACCEPTED — must not happen")
    except AuthenticationError:
        print("forged proof (invented rule) rejected by the checker")


if __name__ == "__main__":
    layers_demo()
    rdf_demo()
    integration_demo()
    flexible_demo()
    trust_demo()
