"""A healthy deployment for the policy compiler to prove equivalent.

Run ``PYTHONPATH=src python -m repro.analysis --compile-report
examples/compile_fixture.py`` to compile both policy bases below into
static decision artifacts and statically verify every compiled cell
against the interpreter.  The bases are deliberately *clean* — the
verification must end ``proved`` with zero unexplained cells — but
they exercise the interesting compiler inputs: glob patterns, every
propagation mode, a content-dependent (residual) condition and a
predicate (dynamic) XPath target.
"""

from repro.core.credentials import anyone, has_role
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.datagen.documents import hospital_schema
from repro.datagen.population import named_cast
from repro.xmlsec.authorx import (
    XmlPropagation,
    XmlPolicyBase,
    xml_deny,
    xml_grant,
)

SCHEMA = hospital_schema()
_cast = named_cast()
SUBJECTS = [_cast.doctor, _cast.nurse, _cast.researcher,
            _cast.administrator, _cast.stranger]

# -- core path-pattern policies -------------------------------------------

POLICY_BASE = PolicyBase()
POLICY_BASE.add(grant(has_role("doctor"), Action.READ, "records/**"))
POLICY_BASE.add(deny(anyone(), Action.READ, "records/*/ssn"))
POLICY_BASE.add(grant(has_role("nurse"), Action.READ,
                      "records/r*/vitals"))
POLICY_BASE.add(grant(has_role("doctor"), Action.WRITE, "records/*"))
POLICY_BASE.add(grant(has_role("administrator"), Action.ADMIN,
                      "archive/**"))
# Residual: the payload condition is interpreted per request; the
# compiled table carries its payload-free projection.
POLICY_BASE.add(grant(has_role("researcher"), Action.READ, "notes/*",
                      condition=lambda payload: payload is None
                      or "deidentified" in str(payload)))

# -- Author-X XML policies over the hospital DTD --------------------------

XML_BASE = XmlPolicyBase()
XML_BASE.add(xml_grant(has_role("doctor"), "//record"))
XML_BASE.add(xml_deny(anyone(), "//record/ssn"))
XML_BASE.add(xml_grant(has_role("nurse"), "/hospital/record/vitals",
                       propagation=XmlPropagation.ONE_LEVEL))
XML_BASE.add(xml_grant(has_role("administrator"), "/hospital/billing",
                       propagation=XmlPropagation.LOCAL))
# Dynamic: the predicate is projected away statically and re-checked
# by the enforcement path per document.
XML_BASE.add(xml_grant(has_role("researcher"),
                       "//record[diagnosis='flu']/diagnosis"))
