"""Hospital records published through an untrusted third party.

The §3.2/[3] scenario end to end: the hospital (owner) marks up policies
and summary-signs its records; an untrusted publisher answers queries;
doctors, nurses and researchers each verify the authenticity and
completeness of their (different) views; and a malicious publisher is
caught on every attack.

Run:  python examples/hospital_records.py
"""

from repro.core import anyone, has_role
from repro.datagen.documents import hospital_corpus
from repro.datagen.population import named_cast
from repro.pubsub import (
    MaliciousPublisher,
    Owner,
    Publisher,
    SubjectVerifier,
)
from repro.xmldb import pretty
from repro.xmlsec import XmlPolicyBase, xml_deny, xml_grant


def main() -> None:
    cast = named_cast()
    policies = XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital"),
        xml_deny(anyone(), "//ssn"),
        xml_grant(has_role("nurse"), "//record/name"),
        xml_grant(has_role("nurse"), "//record/treatment"),
        xml_grant(has_role("researcher"), "//record/diagnosis"),
    ])

    owner = Owner("hospital", policies, key_seed=101)
    records = hospital_corpus(6, seed=101)
    owner.add_document("records-2004", records)

    publisher = Publisher("cloud-host")
    owner.publish_to(publisher)
    print(f"owner published {records.size()}-element document to the "
          f"untrusted publisher\n")

    for subject in (cast.doctor, cast.nurse, cast.researcher):
        answer = publisher.request(subject, "records-2004")
        verifier = SubjectVerifier(subject, owner.public_key, policies)
        report = verifier.verify(answer)
        texts = sorted({n.text for n in answer.view.iter() if n.text})
        print(f"{subject.identity.name:>10}: verified={report.ok} "
              f"| proof hashes={answer.proof_hash_count()} "
              f"| sample content: {texts[:3]}")

    print("\nfirst two records of the nurse's verified view:")
    answer = publisher.request(cast.nurse, "records-2004")
    print(pretty(answer.view.root.element_children[0]))
    print(pretty(answer.view.root.element_children[1]))

    print("\nnow the publisher turns malicious:")
    owner.add_document("decoy", hospital_corpus(2, seed=102))
    for mode in ("tamper", "omit", "swap"):
        attacker = MaliciousPublisher(mode)
        owner.publish_to(attacker)
        answer = attacker.request(cast.doctor, "records-2004")
        report = SubjectVerifier(cast.doctor, owner.public_key,
                                 policies).verify(answer)
        print(f"  {mode:>6}: authentic={report.authentic} "
              f"complete={report.complete} -> "
              f"{'DETECTED' if not report.ok else 'missed!'}")


if __name__ == "__main__":
    main()
